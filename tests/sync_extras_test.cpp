// Section 7 synchronization extras: reader-writer locks, reentrant
// mutexes, and once-initialization - each checked for the happens-before
// edges it must create (no false alarms) and the ones it must NOT create
// (real races still caught).
#include <gtest/gtest.h>

#include "runtime/sync_extras.h"
#include "vft/vft_v2.h"

namespace vft::rt {
namespace {

TEST(SharedMutex, WriterThenReadersNoFalseAlarm) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  Var<int, VftV2> data(R, 0);
  SharedMutex<VftV2> rw(R);
  parallel_for_threads(R, 4, [&](std::uint32_t w) {
    if (w == 0) {
      rw.lock();
      data.store(42);
      rw.unlock();
    } else {
      for (int i = 0; i < 50; ++i) {
        SharedGuard<VftV2> g(rw);
        (void)data.load();
      }
    }
  });
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(SharedMutex, ReadersThenWriterNoFalseAlarm) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  Var<int, VftV2> data(R, 7);
  SharedMutex<VftV2> rw(R);
  // Phase 1: concurrent readers.
  parallel_for_threads(R, 3, [&](std::uint32_t) {
    SharedGuard<VftV2> g(rw);
    (void)data.load();
  });
  // Phase 2: a writer that has only the rwlock ordering to rely on.
  Thread<VftV2> writer(R, [&] {
    rw.lock();
    data.store(8);  // ordered after all reads via r_vc
    rw.unlock();
  });
  writer.join();
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(SharedMutex, ReadLockDoesNotOrderReadersAgainstEachOther) {
  // Two readers also *write* a variable while holding only read locks:
  // that is a real race and must be reported (read-locks don't exclude).
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  Var<int, VftV2> data(R, 0);
  SharedMutex<VftV2> rw(R);
  parallel_for_threads(R, 2, [&](std::uint32_t w) {
    SharedGuard<VftV2> g(rw);
    data.store(static_cast<int>(w));  // bug: write under read lock
  });
  EXPECT_GE(rc.count(), 1u);
}

TEST(SharedMutex, WriterChainsAcrossAlternation) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  Var<int, VftV2> data(R, 0);
  SharedMutex<VftV2> rw(R);
  parallel_for_threads(R, 4, [&](std::uint32_t w) {
    for (int i = 0; i < 40; ++i) {
      if ((i + w) % 4 == 0) {
        rw.lock();
        data.store(data.load() + 1);
        rw.unlock();
      } else {
        SharedGuard<VftV2> g(rw);
        (void)data.load();
      }
    }
  });
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(RecursiveMutex, NestedAcquiresAreOneEvent) {
  RaceCollector rc;
  RuleStats stats;
  Runtime<VftV2> R{VftV2(&rc, &stats)};
  Runtime<VftV2>::MainScope scope(R);
  RecursiveMutex<VftV2> m(R);
  m.lock();
  m.lock();
  m.lock();
  EXPECT_EQ(m.depth(), 3);
  m.unlock();
  m.unlock();
  m.unlock();
  EXPECT_EQ(stats.count(Rule::kAcquire), 1u);  // outermost only
  EXPECT_EQ(stats.count(Rule::kRelease), 1u);
}

TEST(RecursiveMutex, StillOrdersCriticalSections) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  Var<int, VftV2> data(R, 0);
  RecursiveMutex<VftV2> m(R);
  parallel_for_threads(R, 4, [&](std::uint32_t) {
    for (int i = 0; i < 30; ++i) {
      m.lock();
      m.lock();  // reentrant inner section
      data.store(data.load() + 1);
      m.unlock();
      m.unlock();
    }
  });
  EXPECT_EQ(data.load(), 120);
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(Once, InitializerHappensBeforeEveryUse) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  auto table = std::make_unique<Array<int, VftV2>>(R, 8, 0);
  Once<int, VftV2> once(R);
  parallel_for_threads(R, 4, [&](std::uint32_t) {
    for (int i = 0; i < 20; ++i) {
      const int marker = once.get([&] {
        for (std::size_t k = 0; k < table->size(); ++k) {
          table->store(k, 11);  // the "static initializer" writes
        }
        return 11;
      });
      EXPECT_EQ(marker, 11);
      for (std::size_t k = 0; k < table->size(); ++k) {
        EXPECT_EQ(table->load(k), 11);  // ordered after the initializer
      }
    }
  });
  EXPECT_TRUE(once.initialized());
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(Once, RunsInitializerExactlyOnce) {
  Runtime<VftV2> R{VftV2{}};
  Runtime<VftV2>::MainScope scope(R);
  Once<int, VftV2> once(R);
  std::atomic<int> runs{0};
  parallel_for_threads(R, 4, [&](std::uint32_t) {
    for (int i = 0; i < 10; ++i) {
      once.get([&] { return runs.fetch_add(1) + 100; });
    }
  });
  EXPECT_EQ(runs.load(), 1);
}

}  // namespace
}  // namespace vft::rt
