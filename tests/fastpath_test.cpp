// The header-inlined ABI fast path (src/abi/vft_abi_inline.h) against its
// two contracts:
//
//   equivalence  with the descriptor armed, every rule counter is
//                bit-identical to the out-of-line path (VFT_FASTPATH=off)
//                on the same deterministic workload, for all six
//                detectors, with sampling off and at rate=1 under both
//                sampling policies - the inline hit performs exactly the
//                bumps the packed-cell fast path would have performed,
//                and everything else falls through;
//   retraction   Session::reset() bumps the global generation, clears the
//                calling thread's descriptor, and retracts the published
//                entry table before the backend dies; a re-selected
//                detector republishes a table stamped with the new
//                generation and events flow again.
//
// Tests share the process-global Session; each begins by reconfiguring
// the environment and resetting.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>

#include "abi/vft_abi.h"
#include "runtime/session.h"
#include "vft/fastpath_ctx.h"
#include "vft/stats.h"

namespace {

using vft::Rule;
using vft::RuleStats;
using vft::rt::ambient::EntryTable;
using vft::rt::ambient::Session;

constexpr const char* kDetectors[] = {"v1",       "v1.5",   "v2",
                                      "ft-mutex", "ft-cas", "djit"};

/// Reconfigure the process-global session: detector, inline fast path
/// on/off, sampling spec (nullptr: off). Forces backend creation so the
/// environment is consumed, then zeroes the rule counters.
void configure(const char* detector, bool inline_on, const char* sampling) {
  if (inline_on) {
    unsetenv("VFT_FASTPATH");
  } else {
    setenv("VFT_FASTPATH", "off", 1);
  }
  if (sampling != nullptr) {
    setenv("VFT_SAMPLING", sampling, 1);
  } else {
    unsetenv("VFT_SAMPLING");
  }
  unsetenv("VFT_BUDGET");
  ASSERT_TRUE(Session::instance().configure(detector));
  Session::instance().reset();
  Session::instance().backend();
  Session::instance().rule_stats().reset();
}

/// Leave no fast-path/sampling environment behind for later binaries.
struct EnvGuard {
  ~EnvGuard() {
    unsetenv("VFT_FASTPATH");
    unsetenv("VFT_SAMPLING");
    unsetenv("VFT_BUDGET");
  }
} env_guard;

alignas(64) long g_buf[1024];
long g_lock_standin = 0;

/// Deterministic mixed workload: repeated same-epoch hits (the inline
/// path's target), exclusive->shared read transitions via a forked
/// child, straddling accesses, SIMD-resolved ranges, and a sync edge.
/// Race-free by construction (fork/join order every cross-thread pair),
/// so every run produces the same counter vector.
void workload() {
  vft_attach();
  char* bytes = reinterpret_cast<char*>(g_buf);
  for (int rep = 0; rep < 4; ++rep) {
    for (int i = 0; i < 128; ++i) vft_write8(&g_buf[i]);
    for (int i = 0; i < 128; ++i) vft_read8(&g_buf[i]);
    for (int i = 0; i < 128; ++i) vft_read8(&g_buf[i]);   // same-epoch reads
    for (int i = 0; i < 128; ++i) vft_write8(&g_buf[i]);  // same-epoch writes
  }
  for (int i = 0; i < 64; ++i) vft_read4(bytes + 4 * i);
  for (int i = 0; i < 16; ++i) vft_write2(bytes + 512 * 8 + 2 * i);
  vft_read4(bytes + 6);    // straddles a shadow-word boundary
  vft_write4(bytes + 14);  // straddles a shadow-word boundary
  vft_range_write(bytes, 1024);
  vft_range_read(bytes, 1024);
  vft_range_read(bytes + 3, 733);  // unaligned, partial-word tail
  const uint64_t tok = vft_thread_create();
  std::thread child([tok] {
    vft_thread_begin(tok);
    // Ordered after the parent's writes by the fork edge: these flip the
    // first 128 words exclusive -> shared, no race.
    for (int i = 0; i < 128; ++i) vft_read8(&g_buf[i]);
    vft_mutex_lock(&g_lock_standin);
    vft_write8(&g_buf[512]);
    vft_mutex_unlock(&g_lock_standin);
    vft_detach();
  });
  child.join();
  vft_thread_join(tok);
  vft_mutex_lock(&g_lock_standin);
  vft_read8(&g_buf[512]);
  vft_mutex_unlock(&g_lock_standin);
  vft_detach();
}

std::array<std::uint64_t, RuleStats::kN> snapshot() {
  std::array<std::uint64_t, RuleStats::kN> out{};
  RuleStats& s = Session::instance().rule_stats();
  for (std::size_t i = 0; i < RuleStats::kN; ++i) {
    out[i] = s.count(static_cast<Rule>(i));
  }
  return out;
}

TEST(FastpathDifferential, BitIdenticalRuleCountersAcrossDetectors) {
  // nullptr: sampling off (the inline cell path is live for spillable
  // detectors). rate=1 cell: gate active, descriptor never arms. rate=1
  // drop: only the countdown half arms, and at full rate it never skips.
  const char* kSampling[] = {nullptr, "rate=1 policy=cell adaptive=0",
                             "rate=1 policy=drop adaptive=0"};
  for (const char* det : kDetectors) {
    for (const char* sampling : kSampling) {
      SCOPED_TRACE(std::string(det) + " / " +
                   (sampling != nullptr ? sampling : "sampling-off"));
      configure(det, /*inline_on=*/true, sampling);
      workload();
      const auto with_inline = snapshot();
      configure(det, /*inline_on=*/false, sampling);
      workload();
      const auto without_inline = snapshot();
      for (std::size_t i = 0; i < RuleStats::kN; ++i) {
        EXPECT_EQ(with_inline[i], without_inline[i])
            << vft::rule_name(static_cast<Rule>(i));
      }
      EXPECT_EQ(vft_race_count(), 0u);
    }
  }
}

TEST(Fastpath, DescriptorArmsAndResolvesHitsInline) {
  configure("v2", /*inline_on=*/true, nullptr);
  vft_attach();
  static long x = 0;
  vft_write8(&x);  // slow path: first event arms the descriptor
  ASSERT_NE(vft_tl_fastpath.gen, 0u);
  RuleStats& s = Session::instance().rule_stats();
  const std::uint64_t hits = s.count(Rule::kFastWriteHit);
  const std::uint64_t misses = s.count(Rule::kFastMiss);
  for (int i = 0; i < 100; ++i) vft_write8(&x);
  // Hits accrue as plain tallies in the descriptor; nothing is shared
  // until a slow-path entry or detach flushes them.
  EXPECT_EQ(vft_tl_fastpath.hit_writes, 100u);
  vft_detach();
  // vft_detach disarms the descriptor with the thread's registry slot,
  // crediting pending tallies on the way out: every repeat was a
  // same-epoch hit, and none fell out of line.
  EXPECT_EQ(vft_tl_fastpath.gen, 0u);
  EXPECT_EQ(s.count(Rule::kFastWriteHit), hits + 100);
  EXPECT_EQ(s.count(Rule::kFastMiss), misses);
}

TEST(Fastpath, EnvKnobDisablesInlineArming) {
  configure("v2", /*inline_on=*/false, nullptr);
  vft_attach();
  static long z = 0;
  for (int i = 0; i < 10; ++i) vft_write8(&z);
  EXPECT_EQ(vft_tl_fastpath.gen, 0u);  // never armed
  // The out-of-line packed-cell fast path still resolves the repeats.
  EXPECT_GE(Session::instance().rule_stats().count(Rule::kFastWriteHit), 9u);
  vft_detach();
}

TEST(Fastpath, ResetRetractsDescriptorAndEntryTable) {
  configure("v2", /*inline_on=*/true, nullptr);
  vft_attach();
  static long y = 0;
  vft_write8(&y);
  ASSERT_NE(vft_tl_fastpath.gen, 0u);
  const EntryTable* t = Session::instance().entry_table();
  ASSERT_NE(t, nullptr);
  const std::uint64_t gen_before =
      __atomic_load_n(&vft_g_fastpath_gen, __ATOMIC_ACQUIRE);
  EXPECT_EQ(t->generation, gen_before);
  vft_detach();

  Session::instance().reset();
  // Retraction: thread descriptor cleared, global generation advanced,
  // published table withdrawn - all before a new backend exists.
  EXPECT_EQ(vft_tl_fastpath.gen, 0u);
  EXPECT_GT(__atomic_load_n(&vft_g_fastpath_gen, __ATOMIC_ACQUIRE),
            gen_before);
  EXPECT_EQ(Session::instance().entry_table(), nullptr);

  // Re-select a different detector: the republished table is stamped with
  // the current generation and events flow end to end again.
  ASSERT_TRUE(Session::instance().configure("ft-cas"));
  vft_attach();
  vft_write8(&y);
  const EntryTable* t2 = Session::instance().entry_table();
  ASSERT_NE(t2, nullptr);
  EXPECT_EQ(t2->generation,
            __atomic_load_n(&vft_g_fastpath_gen, __ATOMIC_ACQUIRE));
  EXPECT_EQ(std::string(vft_detector_name()), "FT-CAS");
  vft_detach();
  Session::instance().configure("v2");
  Session::instance().reset();
}

}  // namespace
