// Tests for the Figure 2 specification: one test per analysis rule, the
// complete Figure 1 worked example as a golden-state test, and the three
// documented differences from the original FastTrack rules.
#include "vft/spec.h"

#include <gtest/gtest.h>

namespace vft {
namespace {

constexpr VarId kX = 0;
constexpr LockId kM = 0;
constexpr Tid A = 0, B = 1, C = 2;

TEST(Spec, InitialThreadEpochIsOne) {
  Spec s;
  EXPECT_EQ(s.thread_epoch(A), Epoch::make(A, 1));
  EXPECT_EQ(s.thread_epoch(B), Epoch::make(B, 1));
}

TEST(Spec, ReadSameEpoch) {
  Spec s;
  EXPECT_EQ(s.on_read(A, kX).rule, Rule::kReadExclusive);
  const auto r = s.on_read(A, kX);
  EXPECT_EQ(r.rule, Rule::kReadSameEpoch);
  EXPECT_FALSE(r.error);
  EXPECT_EQ(s.var(kX).R, Epoch::make(A, 1));
}

TEST(Spec, ReadExclusiveAcrossEpochs) {
  Spec s;
  s.on_read(A, kX);
  s.on_acquire(A, kM);
  s.on_release(A, kM);  // A enters epoch 2
  const auto r = s.on_read(A, kX);
  EXPECT_EQ(r.rule, Rule::kReadExclusive);
  EXPECT_EQ(s.var(kX).R, Epoch::make(A, 2));
}

TEST(Spec, ReadShareOnConcurrentReads) {
  Spec s;
  s.on_read(A, kX);
  const auto r = s.on_read(B, kX);  // concurrent with A's read
  EXPECT_EQ(r.rule, Rule::kReadShare);
  EXPECT_TRUE(s.var(kX).R.is_shared());
  EXPECT_EQ(s.var(kX).V.get(A), Epoch::make(A, 1));
  EXPECT_EQ(s.var(kX).V.get(B), Epoch::make(B, 1));
}

TEST(Spec, ReadSharedUpdatesOwnSlot) {
  Spec s;
  s.on_read(A, kX);
  s.on_read(B, kX);  // -> SHARED
  const auto r = s.on_read(C, kX);
  EXPECT_EQ(r.rule, Rule::kReadShared);
  EXPECT_EQ(s.var(kX).V.get(C), Epoch::make(C, 1));
}

TEST(Spec, ReadSharedSameEpochSkipsWork) {
  Spec s;
  s.on_read(A, kX);
  s.on_read(B, kX);  // -> SHARED
  EXPECT_EQ(s.on_read(B, kX).rule, Rule::kReadSharedSameEpoch);
  EXPECT_EQ(s.on_read(A, kX).rule, Rule::kReadSharedSameEpoch);
}

TEST(Spec, WriteSameEpoch) {
  Spec s;
  s.on_write(A, kX);
  const auto r = s.on_write(A, kX);
  EXPECT_EQ(r.rule, Rule::kWriteSameEpoch);
  EXPECT_FALSE(r.error);
}

TEST(Spec, WriteExclusive) {
  Spec s;
  const auto r = s.on_write(A, kX);
  EXPECT_EQ(r.rule, Rule::kWriteExclusive);
  EXPECT_EQ(s.var(kX).W, Epoch::make(A, 1));
}

TEST(Spec, WriteSharedChecksFullClock) {
  // Give A knowledge of B's read via a lock handoff, then write from A.
  Spec s2;
  s2.on_read(A, kX);
  s2.on_read(B, kX);  // SHARED with A@1, B@1
  s2.on_acquire(B, kM);
  s2.on_release(B, kM);
  s2.on_acquire(A, kM);  // A now knows B@1
  const auto r = s2.on_write(A, kX);
  EXPECT_EQ(r.rule, Rule::kWriteShared);
  EXPECT_FALSE(r.error);
  // VerifiedFT keeps R = SHARED after a shared write (Section 3).
  EXPECT_TRUE(s2.var(kX).R.is_shared());
}

TEST(Spec, WriteReadRace) {
  Spec s;
  s.on_write(A, kX);
  const auto r = s.on_read(B, kX);
  EXPECT_TRUE(r.error);
  EXPECT_EQ(r.rule, Rule::kWriteReadRace);
  EXPECT_TRUE(s.halted());
}

TEST(Spec, WriteWriteRace) {
  Spec s;
  s.on_write(A, kX);
  const auto r = s.on_write(B, kX);
  EXPECT_TRUE(r.error);
  EXPECT_EQ(r.rule, Rule::kWriteWriteRace);
}

TEST(Spec, ReadWriteRace) {
  Spec s;
  s.on_read(A, kX);
  const auto r = s.on_write(B, kX);
  EXPECT_TRUE(r.error);
  EXPECT_EQ(r.rule, Rule::kReadWriteRace);
}

TEST(Spec, SharedWriteRace) {
  Spec s;
  s.on_read(A, kX);
  s.on_read(B, kX);  // -> SHARED
  const auto r = s.on_write(A, kX);  // A doesn't know B's read
  EXPECT_TRUE(r.error);
  EXPECT_EQ(r.rule, Rule::kSharedWriteRace);
}

TEST(Spec, LockHandoffOrdersAccesses) {
  Spec s;
  s.on_write(A, kX);
  s.on_acquire(A, kM);
  s.on_release(A, kM);
  s.on_acquire(B, kM);
  const auto r = s.on_write(B, kX);
  EXPECT_FALSE(r.error);
  EXPECT_EQ(r.rule, Rule::kWriteExclusive);
}

TEST(Spec, ForkOrdersParentBeforeChild) {
  Spec s;
  s.on_write(A, kX);
  s.on_fork(A, B);
  EXPECT_FALSE(s.on_write(B, kX).error);
  // And the parent moved to a new epoch.
  EXPECT_EQ(s.thread_epoch(A), Epoch::make(A, 2));
}

TEST(Spec, JoinOrdersChildBeforeJoiner) {
  Spec s;
  s.on_fork(A, B);
  s.on_write(B, kX);
  s.on_join(A, B);
  EXPECT_FALSE(s.on_write(A, kX).error);
}

TEST(Spec, JoinDoesNotIncrementJoinedThreadInVerifiedFT) {
  Spec s;
  s.on_fork(A, B);
  s.on_read(B, kX);
  const Epoch b_before = s.thread_epoch(B);
  s.on_join(A, B);
  EXPECT_EQ(s.thread_epoch(B), b_before);  // VerifiedFT drops the update
}

TEST(Spec, HaltsAfterError) {
  Spec s;
  s.on_write(A, kX);
  s.on_write(B, kX);
  EXPECT_TRUE(s.halted());
  EXPECT_DEATH(s.on_read(A, kX), "VFT_CHECK");
}

// --- Differences from the original FastTrack rules (Section 3) ---

TEST(SpecOriginalFT, NoReadSharedSameEpochRule) {
  Spec s(RuleSet::kOriginalFastTrack);
  s.on_read(A, kX);
  s.on_read(B, kX);  // -> SHARED
  // A re-read in the same epoch runs the full [Read Shared] rule.
  EXPECT_EQ(s.on_read(B, kX).rule, Rule::kReadShared);
}

TEST(SpecOriginalFT, WriteSharedResetsReadHistory) {
  Spec s(RuleSet::kOriginalFastTrack);
  s.on_read(A, kX);
  s.on_read(B, kX);  // SHARED
  s.on_acquire(B, kM);
  s.on_release(B, kM);
  s.on_acquire(A, kM);
  const auto r = s.on_write(A, kX);
  EXPECT_EQ(r.rule, Rule::kWriteShared);
  EXPECT_FALSE(s.var(kX).R.is_shared());  // forgot the reads
  EXPECT_EQ(s.var(kX).R, Epoch());
}

TEST(SpecOriginalFT, JoinIncrementsJoinedThread) {
  Spec s(RuleSet::kOriginalFastTrack);
  s.on_fork(A, B);
  s.on_read(B, kX);
  const Epoch b_before = s.thread_epoch(B);
  s.on_join(A, B);
  EXPECT_EQ(s.thread_epoch(B), b_before.inc());
}

// --- Figure 1: the paper's worked example, checked state-by-state ---

// Compares <c_A, c_B> against a clock (absent slots read as bottom).
::testing::AssertionResult vc_is(const VectorClock& vc, Clock ca, Clock cb) {
  if (vc.get(A) != Epoch::make(A, ca) || vc.get(B) != Epoch::make(B, cb)) {
    return ::testing::AssertionFailure()
           << vc.str() << " != <" << ca << "," << cb << ">";
  }
  return ::testing::AssertionSuccess();
}

class Figure1 : public ::testing::Test {
 protected:
  // Drive the state to the figure's first row: SA.V=<4,0>, SB.V=<0,8>,
  // Sm.V=bottom, Sx={V:bottom, R:A@1, W:A@1}, with A holding m.
  void SetUp() override {
    spec.on_write(A, kX);  // W = A@1
    spec.on_read(A, kX);   // R = A@1
    for (int i = 0; i < 3; ++i) {  // A's clock 1 -> 4
      spec.on_acquire(A, 90);
      spec.on_release(A, 90);
    }
    for (int i = 0; i < 7; ++i) {  // B's clock 1 -> 8
      spec.on_acquire(B, 91);
      spec.on_release(B, 91);
    }
    spec.on_acquire(A, kM);  // the acquire matching the figure's rel(m)
    ASSERT_TRUE(vc_is(spec.thread_vc(A), 4, 0));
    ASSERT_TRUE(vc_is(spec.thread_vc(B), 0, 8));
    ASSERT_EQ(spec.var(kX).R, Epoch::make(A, 1));
    ASSERT_EQ(spec.var(kX).W, Epoch::make(A, 1));
  }

  Spec spec;
};

TEST_F(Figure1, CompleteWalkthrough) {
  // x = 0 (A writes): W becomes A@4.
  EXPECT_EQ(spec.on_write(A, kX).rule, Rule::kWriteExclusive);
  EXPECT_EQ(spec.var(kX).W, Epoch::make(A, 4));

  // rel(A, m): Sm.V = <4,0>, SA.V -> <5,0>.
  spec.on_release(A, kM);
  EXPECT_TRUE(vc_is(spec.lock_vc(kM), 4, 0));
  EXPECT_TRUE(vc_is(spec.thread_vc(A), 5, 0));

  // acq(B, m): SB.V = <4,8>.
  spec.on_acquire(B, kM);
  EXPECT_TRUE(vc_is(spec.thread_vc(B), 4, 8));

  // s = x (B reads): A@1 happens-before <4,8>, so R := B@8.
  const auto r1 = spec.on_read(B, kX);
  EXPECT_EQ(r1.rule, Rule::kReadExclusive);
  EXPECT_EQ(spec.var(kX).R, Epoch::make(B, 8));

  // t = x (A reads): B@8 is concurrent with <5,0> -> SHARED, V=<5,8>.
  const auto r2 = spec.on_read(A, kX);
  EXPECT_EQ(r2.rule, Rule::kReadShare);
  EXPECT_TRUE(spec.var(kX).R.is_shared());
  EXPECT_TRUE(vc_is(spec.var(kX).V, 5, 8));

  // x = 1 (A writes): Sx.V=<5,8> is not <= SA.V=<5,0> -> Race!
  const auto r3 = spec.on_write(A, kX);
  EXPECT_TRUE(r3.error);
  EXPECT_EQ(r3.rule, Rule::kSharedWriteRace);
}

}  // namespace
}  // namespace vft
