// Chain<D1,D2> tool composition: both components observe every access,
// verdicts conjoin, sync bookkeeping applies once, and an online
// cross-check of two detectors over random traces agrees everywhere.
#include <gtest/gtest.h>

#include "trace/generator.h"
#include "trace/replay.h"
#include "vft/chain.h"
#include "vft/detector.h"

namespace vft {
namespace {

static_assert(Detector<Chain<VftV1, VftV2>>);
static_assert(Detector<Chain<VftV2, FtCas>>);

TEST(Chain, BothComponentsSeeEveryAccess) {
  RaceCollector rc;
  RuleStats stats;
  Chain<VftV2, VftV1> chain(VftV2(&rc, &stats), VftV1(&rc, &stats));
  ThreadState t0(0);
  Chain<VftV2, VftV1>::VarState x;
  chain.read(t0, x);
  chain.read(t0, x);
  chain.write(t0, x);
  // 3 accesses x 2 components = 6 counted rule firings.
  EXPECT_EQ(stats.total_accesses(), 6u);
}

TEST(Chain, VerdictIsConjunction) {
  RaceCollector rc;
  Chain<VftV2, VftV1> chain(&rc);
  ThreadState t0(0), t1(1);
  Chain<VftV2, VftV1>::VarState x;
  EXPECT_TRUE(chain.write(t0, x));
  EXPECT_FALSE(chain.write(t1, x));  // both report; verdict false
  EXPECT_EQ(rc.count(), 2u);         // one report per component
}

TEST(Chain, SyncHandlersApplyOnce) {
  Chain<VftV2, VftV1> chain;
  ThreadState t0(0);
  LockState m;
  const Epoch before = t0.epoch();
  chain.release(t0, m);
  EXPECT_EQ(t0.epoch(), before.inc());  // exactly one increment
}

TEST(Chain, IdPropagatesToBothComponents) {
  RaceCollector rc;
  Chain<VftV2, FtCas> chain(&rc);
  ThreadState t0(0), t1(1);
  Chain<VftV2, FtCas>::VarState x;
  x.id = 777;
  chain.write(t0, x);
  chain.write(t1, x);
  ASSERT_EQ(rc.count(), 2u);
  EXPECT_EQ(rc.all()[0].var, 777u);
  EXPECT_EQ(rc.all()[1].var, 777u);
}

// Online cross-check: v2 and FT-CAS (revised rules) chained over random
// traces must agree access-by-access - their collectors grow in lockstep.
TEST(Chain, OnlineCrossCheckV2AgainstFtCas) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    trace::GeneratorConfig cfg;
    cfg.initial_threads = 3;
    cfg.max_threads = 2;
    cfg.vars = 6;
    cfg.disciplined_fraction = 0.6;
    cfg.ops = 150;
    cfg.seed = seed;
    const trace::Trace t = trace::generate(cfg);

    RaceCollector rc_v2, rc_cas;
    Chain<VftV2, FtCas> chain(VftV2(&rc_v2),
                              FtCas(&rc_cas, nullptr, RuleSet::kVerifiedFT));
    trace::ShadowStore<Chain<VftV2, FtCas>> store;
    for (const trace::Op& op : t) {
      const std::size_t v2_before = rc_v2.count();
      const std::size_t cas_before = rc_cas.count();
      trace::apply(chain, store, op);
      // Per-op agreement on race *presence* (counts can differ: a racy
      // write may trip both the W-W and R-W checks in v2 while FT-CAS's
      // fail-over reports once).
      ASSERT_EQ(rc_v2.count() > v2_before, rc_cas.count() > cas_before)
          << "divergence at " << op.str() << " seed " << seed;
      // After the first race the fail-over recoveries may legitimately
      // diverge; stop the lockstep comparison there.
      if (rc_v2.count() > v2_before) break;
    }
  }
}

}  // namespace
}  // namespace vft
