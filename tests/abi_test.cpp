// The C ABI (src/abi/vft_abi.h) end to end against the process-global
// session: implicit attach, the explicit create/begin/join/detach token
// protocol, graceful tid-space exhaustion, free-hint shadow/lock
// resetting, launch-time detector selection, and report dumping.
//
// Thread-lifecycle invariants under test (ALGORITHM.md s12): a thread's
// slot retires exactly once - at its join if joinable, at its end if
// detached or implicitly attached - and exit-without-join leaves the
// registry consistent instead of aborting.
//
// Two shapes of "concurrent" appear below. Races need threads whose
// *slots* are simultaneously live (a retired slot's successor continues
// its predecessor's clock, so back-to-back implicit threads are ordered
// by design - see ReuseOrdersSequentialImplicitThreads); the spin
// barrier keeps both racers attached until both accesses happened. The
// test variables are only ever *named* to the ABI, never physically
// accessed concurrently, so the tests themselves are data-race-free.
//
// Tests share one process-global Session, so each begins with reset().
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <mutex>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "abi/vft_abi.h"
#include "runtime/session.h"

namespace {

using vft::Epoch;
using vft::rt::ambient::Session;

void fresh_session(const char* detector = "v2") {
  Session::instance().configure(detector);
  Session::instance().reset();
}

vft::rt::Registry& registry() {
  return Session::instance().runtime().registry();
}

/// Two implicitly-attached threads run `body(step)` while both slots are
/// live: each signals after its body and spins until the other did too,
/// only then detaches.
template <typename Fn>
void run_concurrent_pair(Fn body) {
  std::atomic<int> done{0};
  auto racer = [&](int who) {
    vft_attach();
    body(who);
    done.fetch_add(1, std::memory_order_release);
    while (done.load(std::memory_order_acquire) < 2) {
      std::this_thread::yield();
    }
    vft_detach();
  };
  std::thread a(racer, 0), b(racer, 1);
  a.join();
  b.join();
}

TEST(Abi, ImplicitAttachAndWriteWriteRace) {
  fresh_session();
  long x = 0;
  run_concurrent_pair([&](int) { vft_write8(&x); });
  EXPECT_GE(vft_race_count(), 1u);
  // Both implicit threads ended: their slots retired, nothing live.
  EXPECT_EQ(registry().live_count(), 0u);
}

TEST(Abi, AttachIsIdempotentAndDetachIsAlwaysSafe) {
  fresh_session();
  EXPECT_EQ(vft_attach(), 1);
  EXPECT_EQ(vft_attach(), 1);
  EXPECT_EQ(registry().live_count(), 1u);
  vft_detach();
  EXPECT_EQ(registry().live_count(), 0u);
  vft_detach();  // never-attached / already-detached: no-op, no abort
  EXPECT_EQ(registry().live_count(), 0u);
}

TEST(Abi, MutexProtocolOrdersCriticalSections) {
  fresh_session();
  long counter = 0;
  // A real mutex provides the physical exclusion; the ABI events follow
  // the interposer discipline around it (lock event after the acquire,
  // unlock event before the release), keyed by the mutex's address.
  std::mutex real_mu;
  run_concurrent_pair([&](int) {
    for (int i = 0; i < 50; ++i) {
      real_mu.lock();
      vft_mutex_lock(&real_mu);
      vft_read8(&counter);
      vft_write8(&counter);
      vft_mutex_unlock(&real_mu);
      real_mu.unlock();
    }
  });
  EXPECT_EQ(vft_race_count(), 0u);

  // The identical shape on *different* locks must race: only the edges
  // through a common lock order the sections.
  long mine[2] = {0, 0};
  run_concurrent_pair([&](int who) {
    vft_mutex_lock(&mine[who]);
    vft_write8(&counter);
    vft_mutex_unlock(&mine[who]);
  });
  EXPECT_GE(vft_race_count(), 1u);
}

TEST(Abi, ReuseOrdersSequentialImplicitThreads) {
  fresh_session();
  long x = 0;
  // Back-to-back (never simultaneously live) implicit threads: the
  // second reuses the first's retired slot and continues its clock, so
  // their accesses are ordered - the documented slot-reuse precision
  // tradeoff, which keeps tid demand bounded by the live population.
  std::thread([&] {
    vft_attach();
    vft_write8(&x);
    vft_detach();
  }).join();
  std::thread([&] {
    vft_attach();
    vft_write8(&x);
    vft_detach();
  }).join();
  EXPECT_EQ(vft_race_count(), 0u);
  EXPECT_EQ(registry().slots_in_use(), 1u);
}

TEST(Abi, ForkJoinTokenProtocolCreatesBothEdges) {
  fresh_session();
  long x = 0;
  vft_attach();
  vft_write8(&x);  // parent write before fork

  const uint64_t token = vft_thread_create();
  ASSERT_NE(token, 0u);
  std::thread child([&, token] {
    vft_thread_begin(token);
    vft_write8(&x);  // ordered after the parent's by the fork edge
    vft_detach();    // end-of-thread: joinable, so no retirement yet
  });
  child.join();
  vft_thread_join(token);  // after the native join, per the s4 ordering
  vft_write8(&x);          // ordered after the child's by the join edge

  EXPECT_EQ(vft_race_count(), 0u);
  EXPECT_EQ(registry().live_count(), 1u);  // only the main thread
  vft_detach();
}

TEST(Abi, UnjoinedExitLeavesSlotLiveUntilTheLateJoin) {
  fresh_session();
  vft_attach();
  const uint64_t token = vft_thread_create();
  ASSERT_NE(token, 0u);
  std::thread child([token] {
    vft_thread_begin(token);
    vft_detach();
  });
  child.join();
  // The child ended but nobody joined: its slot must stay allocated
  // (consistent, exactly like a leaked joinable pthread) - not aborted,
  // not double-freed.
  EXPECT_EQ(registry().live_count(), 2u);
  vft_thread_join(token);  // the (late) join retires it - exactly once
  EXPECT_EQ(registry().live_count(), 1u);
  vft_thread_join(token);  // token already consumed: no-op
  EXPECT_EQ(registry().live_count(), 1u);
  vft_detach();
}

TEST(Abi, DetachedThreadRetiresAtItsEndExactlyOnce) {
  fresh_session();
  vft_attach();
  const uint64_t token = vft_thread_create();
  ASSERT_NE(token, 0u);
  vft_thread_detach(token);  // pthread_detach before the thread ends
  std::thread child([token] {
    vft_thread_begin(token);
    vft_detach();  // detached: the end event retires the slot
  });
  child.join();
  EXPECT_EQ(registry().live_count(), 1u);
  vft_thread_join(token);  // misuse after detach: no-op, no abort
  EXPECT_EQ(registry().live_count(), 1u);

  // Detach *after* the thread ended takes the other branch of
  // retire_if_due and must also retire exactly once.
  const uint64_t token2 = vft_thread_create();
  ASSERT_NE(token2, 0u);
  std::thread child2([token2] {
    vft_thread_begin(token2);
    vft_detach();
  });
  child2.join();
  EXPECT_EQ(registry().live_count(), 2u);
  vft_thread_detach(token2);
  EXPECT_EQ(registry().live_count(), 1u);
  vft_detach();
}

TEST(Abi, ExhaustionDegradesToUnmonitoredNotAbort) {
  fresh_session();
  vft_attach();  // main: 1 live slot
  std::vector<uint64_t> tokens;
  for (std::uint32_t i = 0; i < Epoch::kMaxTid; ++i) {
    const uint64_t token = vft_thread_create();
    ASSERT_NE(token, 0u) << "slot " << i;
    tokens.push_back(token);
  }
  EXPECT_EQ(registry().live_count(), Epoch::kMaxTid + 1u);
  // Every tid is live: the next create degrades to the unmonitored
  // token, and the whole protocol accepts it as a no-op.
  const uint64_t overflow = vft_thread_create();
  EXPECT_EQ(overflow, 0u);
  long x = 0;
  std::thread unmonitored([overflow, &x] {
    vft_thread_begin(overflow);
    vft_write8(&x);  // invisible, but must not crash or race-report
    vft_detach();
  });
  unmonitored.join();
  vft_thread_join(overflow);
  EXPECT_EQ(vft_race_count(), 0u);

  for (const uint64_t token : tokens) vft_thread_join(token);
  EXPECT_EQ(registry().live_count(), 1u);
  // With slots free again, creation resumes normally.
  const uint64_t again = vft_thread_create();
  EXPECT_NE(again, 0u);
  vft_thread_join(again);
  vft_detach();
}

TEST(Abi, FreeHintResetsShadowWordsAndLockStates) {
  fresh_session();
  vft_attach();
  auto* buf = new long[8];
  for (int i = 0; i < 8; ++i) vft_write8(&buf[i]);
  long mu_stand_in = 0;
  vft_mutex_lock(&mu_stand_in);
  vft_mutex_unlock(&mu_stand_in);

  auto& backend = Session::instance().backend();
  EXPECT_GE(backend.shadow_words(), 8u);
  EXPECT_EQ(backend.locks_seen(), 1u);

  vft_free_hint(buf, 8 * sizeof(long));
  vft_free_hint(&mu_stand_in, sizeof(mu_stand_in));
  delete[] buf;

  EXPECT_EQ(backend.locks_seen(), 0u);
  // Ungated spillable accesses route through the packed space, so the
  // free hint's resets land there; sum both spaces to stay agnostic.
  const auto stats = Session::instance().shadow().stats();
  const auto packed =
      Session::instance().runtime().packed_space().stats();
  EXPECT_GE(stats.words_reset + packed.words_reset, 8u);
  vft_detach();
}

TEST(Abi, FreeHintPreventsStaleStateOnRecycledAddresses) {
  fresh_session();
  long x = 0;
  std::atomic<int> stage{0};
  // A writes x, the address is "freed" while both threads stay live,
  // then B writes the recycled address: no race (B starts from bottom
  // shadow state). Without the free hint this exact shape is the
  // ImplicitAttachAndWriteWriteRace test.
  std::thread a([&] {
    vft_attach();
    vft_write8(&x);
    stage.store(1, std::memory_order_release);
    while (stage.load(std::memory_order_acquire) < 3) {
      std::this_thread::yield();
    }
    vft_detach();
  });
  std::thread b([&] {
    vft_attach();
    while (stage.load(std::memory_order_acquire) < 2) {
      std::this_thread::yield();
    }
    vft_write8(&x);
    stage.store(3, std::memory_order_release);
    vft_detach();
  });
  while (stage.load(std::memory_order_acquire) < 1) {
    std::this_thread::yield();
  }
  vft_free_hint(&x, sizeof(x));
  stage.store(2, std::memory_order_release);
  a.join();
  b.join();
  EXPECT_EQ(vft_race_count(), 0u);
}

TEST(Abi, DetectorSelectionReachesTheFactory) {
  fresh_session("ft-cas");
  EXPECT_STREQ(vft_detector_name(), "FT-CAS");
  // The erased path works under a non-default detector...
  long x = 0;
  run_concurrent_pair([&](int) { vft_write8(&x); });
  EXPECT_GE(vft_race_count(), 1u);

  // ...and the name is per-launch, not per-build.
  fresh_session("djit");
  EXPECT_STREQ(vft_detector_name(), "DJIT+ (full VC)");

  EXPECT_FALSE(Session::instance().configure("fasttrack3000"));
  fresh_session("v2");
  EXPECT_STREQ(vft_detector_name(), "VerifiedFT-v2");
}

TEST(AbiDeathTest, TypedRuntimeUnderOtherDetectorDiesActionably) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Session::instance().configure("djit");
        Session::instance().reset();
        (void)Session::instance().runtime();
      },
      "launched with detector.*VFT_DETECTOR=v2");
  fresh_session("v2");
}

TEST(Abi, ReportWriteTextAndJson) {
  fresh_session();
  long x = 0;
  run_concurrent_pair([&](int) { vft_write8(&x); });
  ASSERT_GE(vft_race_count(), 1u);

  char text_path[64], json_path[64];
  std::snprintf(text_path, sizeof(text_path), "/tmp/vft-abi-%d.txt",
                static_cast<int>(::getpid()));
  std::snprintf(json_path, sizeof(json_path), "/tmp/vft-abi-%d.json",
                static_cast<int>(::getpid()));
  ASSERT_EQ(vft_report_write(text_path, 0), 0);
  ASSERT_EQ(vft_report_write(json_path, 1), 0);

  auto slurp = [](const char* p) {
    std::ifstream in(p);
    std::ostringstream all;
    all << in.rdbuf();
    return all.str();
  };
  const std::string text = slurp(text_path);
  EXPECT_NE(text.find("VerifiedFT-v2"), std::string::npos);
  EXPECT_NE(text.find("summary: races="), std::string::npos);
  const std::string json = slurp(json_path);
  EXPECT_NE(json.find("\"detector\": \"VerifiedFT-v2\""), std::string::npos);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\""), std::string::npos);
  std::remove(text_path);
  std::remove(json_path);

  EXPECT_EQ(vft_report_write("/nonexistent-dir/report.txt", 0), -1);
}

}  // namespace
