// Volatile operations in the trace language: parsing, spec semantics
// (acquire/release-like edges), oracle agreement, and detector replay.
#include <gtest/gtest.h>

#include "trace/feasibility.h"
#include "trace/generator.h"
#include "trace/hb_oracle.h"
#include "trace/replay.h"
#include "vft/detector.h"

namespace vft::trace {
namespace {

TEST(VolatileTrace, ParsePrintRoundTrip) {
  const Trace t = {vwr(0, 3), vrd(1, 3), rd(1, 0)};
  EXPECT_EQ(to_string(t), "vwr(0,v3); vrd(1,v3); rd(1,x0)");
  Trace parsed;
  ASSERT_TRUE(parse(to_string(t), &parsed));
  EXPECT_EQ(parsed, t);
}

TEST(VolatileTrace, PublicationOrdersAccesses) {
  // The classic volatile-flag publication: data write, volatile write,
  // volatile read, data read. Race-free.
  const Trace t = {wr(0, 7), vwr(0, 1), vrd(1, 1), rd(1, 7)};
  ASSERT_TRUE(is_feasible(t));
  EXPECT_TRUE(analyze(t).race_free());
  EXPECT_TRUE(analyze_closure(t).race_free());
  Spec spec;
  EXPECT_FALSE(replay_spec(t, spec).error_index.has_value());
}

TEST(VolatileTrace, ReadBeforeWriteGivesNoEdge) {
  // The read precedes the write: no ordering flows, the data accesses race.
  const Trace t = {vrd(1, 1), wr(0, 7), vwr(0, 1), rd(1, 7)};
  EXPECT_FALSE(analyze(t).race_free());
  EXPECT_FALSE(analyze_closure(t).race_free());
  Spec spec;
  EXPECT_TRUE(replay_spec(t, spec).error_index.has_value());
}

TEST(VolatileTrace, WritesDoNotOrderEachOther) {
  // Two volatile writers, then a reader: the reader is ordered after BOTH
  // writes, but the writers stay concurrent with each other - their
  // *data* writes race.
  const Trace t = {wr(0, 7), vwr(0, 1),   // writer A publishes
                   wr(1, 7),              // races with A's data write
                   vwr(1, 1), vrd(2, 1), rd(2, 7)};
  const HbResult res = analyze(t);
  ASSERT_FALSE(res.race_free());
  EXPECT_EQ(res.first_race->first, 0u);
  EXPECT_EQ(res.first_race->second, 2u);
  // And the closure oracle agrees about the pair.
  const HbResult res2 = analyze_closure(t);
  ASSERT_FALSE(res2.race_free());
  EXPECT_EQ(res2.first_race->second, 2u);
}

TEST(VolatileTrace, ReaderOrderedAfterAllEarlierWriters) {
  const Trace t = {wr(0, 5), vwr(0, 1), wr(1, 6), vwr(1, 1),
                   vrd(2, 1), rd(2, 5), rd(2, 6)};
  EXPECT_TRUE(analyze(t).race_free());
  EXPECT_TRUE(analyze_closure(t).race_free());
  Spec spec;
  EXPECT_FALSE(replay_spec(t, spec).error_index.has_value());
}

TEST(VolatileTrace, SpecVolWriteStartsNewEpoch) {
  Spec spec;
  const Epoch before = spec.thread_epoch(0);
  spec.on_vol_write(0, 1);
  EXPECT_EQ(spec.thread_epoch(0), before.inc());
  // And the volatile's clock recorded the writer.
  EXPECT_EQ(spec.vol_vc(1).get(0), before);
}

TEST(VolatileTrace, DetectorsAgreeOnVolatileTraces) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    GeneratorConfig cfg;
    cfg.initial_threads = 3;
    cfg.max_threads = 2;
    cfg.vars = 5;
    cfg.volatiles = 3;
    cfg.volatile_fraction = 0.5;  // volatile-heavy sweep
    cfg.sync_fraction = 0.35;
    cfg.disciplined_fraction = 0.7;
    cfg.ops = 160;
    cfg.seed = seed;
    const Trace t = generate(cfg);
    ASSERT_TRUE(is_feasible(t));
    std::size_t vol_ops = 0;
    for (const Op& op : t) {
      vol_ops += op.kind == OpKind::kVolRead || op.kind == OpKind::kVolWrite;
    }
    Spec spec;
    const auto sr = replay_spec(t, spec);
    const HbResult oracle = analyze(t);
    ASSERT_EQ(oracle.race_free(), !sr.error_index.has_value())
        << "seed " << seed << "\n" << to_string(t);
    for_each_detector(nullptr, nullptr, [&](auto& d) {
      using D = std::decay_t<decltype(d)>;
      const ReplayResult run = replay(t, d);
      EXPECT_EQ(run.first_race, sr.error_index)
          << D::kName << " seed " << seed;
    });
  }
}

TEST(VolatileTrace, GeneratorEmitsVolatiles) {
  GeneratorConfig cfg;
  cfg.volatiles = 2;
  cfg.volatile_fraction = 0.6;
  cfg.sync_fraction = 0.5;
  cfg.ops = 300;
  cfg.seed = 3;
  const Trace t = generate(cfg);
  std::size_t vols = 0;
  for (const Op& op : t) {
    vols += op.kind == OpKind::kVolRead || op.kind == OpKind::kVolWrite;
  }
  EXPECT_GT(vols, 20u);
}

}  // namespace
}  // namespace vft::trace
