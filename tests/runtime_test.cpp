// Runtime substrate: registry lifecycle (allocation, thread_local scoping,
// tid reuse with clock continuation), the instrumented wrappers, and the
// shadow table.
#include <gtest/gtest.h>

#include "runtime/instrument.h"
#include "runtime/shadow_table.h"

namespace vft::rt {
namespace {

TEST(Registry, AllocatesDenseTids) {
  Registry reg;
  EXPECT_EQ(reg.create().t, 0u);
  EXPECT_EQ(reg.create().t, 1u);
  EXPECT_EQ(reg.create().t, 2u);
  EXPECT_EQ(reg.slots_in_use(), 3u);
}

TEST(Registry, ThreadScopeBindsAndRestores) {
  Registry reg;
  ThreadState& a = reg.create();
  ThreadState& b = reg.create();
  EXPECT_EQ(Registry::current(), nullptr);
  {
    Registry::ThreadScope outer(a);
    EXPECT_EQ(Registry::current(), &a);
    {
      Registry::ThreadScope inner(b);
      EXPECT_EQ(Registry::current(), &b);
    }
    EXPECT_EQ(Registry::current(), &a);
  }
  EXPECT_EQ(Registry::current(), nullptr);
}

TEST(Registry, RetiredSlotIsReusedWithContinuedClock) {
  Registry reg;
  reg.create();  // main, tid 0
  ThreadState& child = reg.create();
  EXPECT_EQ(child.t, 1u);
  child.inc();
  child.inc();
  const Epoch last = child.epoch();
  reg.retire(child);
  ThreadState& successor = reg.create();
  EXPECT_EQ(successor.t, 1u);                    // same slot
  EXPECT_EQ(reg.slots_in_use(), 2u);             // no new slot
  EXPECT_EQ(successor.epoch(), last.inc());      // clock continues
  EXPECT_TRUE(leq(last, successor.V.get(1)));    // predecessor ordered before
}

TEST(Runtime, VarLoadStoreRoundTrip) {
  Runtime<VftV2> R{VftV2{}};
  Runtime<VftV2>::MainScope scope(R);
  Var<int, VftV2> v(R, 41);
  EXPECT_EQ(v.load(), 41);
  v.store(42);
  EXPECT_EQ(v.load(), 42);
}

TEST(Runtime, ArrayElementsAreIndependentlyShadowed) {
  Runtime<VftV2> R{VftV2{}};
  Runtime<VftV2>::MainScope scope(R);
  Array<double, VftV2> a(R, 8, 1.5);
  EXPECT_EQ(a.size(), 8u);
  EXPECT_EQ(a.load(3), 1.5);
  a.store(3, 2.5);
  EXPECT_EQ(a.load(3), 2.5);
  EXPECT_EQ(a.load(4), 1.5);
  EXPECT_NE(a.shadow(3).id, a.shadow(4).id);
}

TEST(Runtime, ForkJoinCreatesHappensBefore) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  Var<int, VftV2> v(R, 0);
  v.store(1);  // main writes before fork
  Thread<VftV2> t(R, [&] {
    EXPECT_EQ(v.load(), 1);  // child reads: ordered by fork
    v.store(2);              // child writes
  });
  t.join();
  EXPECT_EQ(v.load(), 2);  // main reads after join: ordered
  v.store(3);              // and writes
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(Runtime, MutexOrdersCriticalSections) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  Var<int, VftV2> v(R, 0);
  Mutex<VftV2> m(R);
  parallel_for_threads(R, 4, [&](std::uint32_t) {
    for (int i = 0; i < 100; ++i) {
      Guard<VftV2> g(m);
      v.store(v.load() + 1);
    }
  });
  EXPECT_EQ(v.load(), 400);
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(Runtime, VolatileCreatesHappensBefore) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  Var<int, VftV2> data(R, 0);
  Volatile<int, VftV2> flag(R, 0);
  Thread<VftV2> producer(R, [&] {
    data.store(99);
    flag.store(1);
  });
  Thread<VftV2> consumer(R, [&] {
    while (flag.load() != 1) {
    }
    EXPECT_EQ(data.load(), 99);  // ordered via the volatile
  });
  producer.join();
  consumer.join();
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(Runtime, BarrierCreatesAllToAllOrdering) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  constexpr std::uint32_t kN = 4;
  Array<int, VftV2> cells(R, kN, 0);
  Barrier<VftV2> barrier(R, kN);
  parallel_for_threads(R, kN, [&](std::uint32_t w) {
    cells.store(w, static_cast<int>(w) + 1);  // own cell
    barrier.arrive_and_wait();
    int sum = 0;  // read everyone's cell: ordered by the barrier
    for (std::uint32_t i = 0; i < kN; ++i) sum += cells.load(i);
    EXPECT_EQ(sum, 10);
    barrier.arrive_and_wait();
    cells.store((w + 1) % kN, 0);  // write someone else's: still ordered
  });
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(Runtime, CondVarWaitPreservesMonitorOrdering) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  Var<int, VftV2> data(R, 0);
  Var<int, VftV2> ready(R, 0);
  Mutex<VftV2> m(R);
  CondVar<VftV2> cv(R);
  Thread<VftV2> consumer(R, [&] {
    m.lock();
    cv.wait(m, [&] { return ready.load() == 1; });
    EXPECT_EQ(data.load(), 7);
    m.unlock();
  });
  Thread<VftV2> producer(R, [&] {
    m.lock();
    data.store(7);
    ready.store(1);
    m.unlock();
    cv.notify_all();
  });
  producer.join();
  consumer.join();
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(Runtime, DetectsRealRaceThroughWrappers) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  Var<int, VftV2> v(R, 0);
  parallel_for_threads(R, 2, [&](std::uint32_t w) {
    v.store(static_cast<int>(w));  // unsynchronized conflicting writes
  });
  EXPECT_GE(rc.count(), 1u);
}

TEST(ShadowTable, SameAddressSameState) {
  Runtime<VftV2> R{VftV2{}};
  ShadowTable<VftV2> tab;
  int a = 0, b = 0;
  EXPECT_EQ(&tab.of(&a), &tab.of(&a));
  EXPECT_NE(&tab.of(&a), &tab.of(&b));
  EXPECT_EQ(tab.size(), 2u);
}

TEST(ShadowTable, DetectsRacesOnRawPointers) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  ShadowTable<VftV2> tab;
  int target = 0;
  instrumented_write(R, tab, &target);
  Thread<VftV2> t(R, [&] {
    instrumented_write(R, tab, &target);  // ordered by fork: fine
  });
  t.join();
  EXPECT_TRUE(rc.empty());
  // Now two genuinely concurrent writers.
  Thread<VftV2> t1(R, [&] { instrumented_write(R, tab, &target); });
  Thread<VftV2> t2(R, [&] { instrumented_write(R, tab, &target); });
  t1.join();
  t2.join();
  EXPECT_GE(rc.count(), 1u);
}

TEST(ShadowTable, ConcurrentLookupsAreSafe) {
  Runtime<VftV2> R{VftV2{}};
  ShadowTable<VftV2> tab;
  std::vector<int> targets(256);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < targets.size(); ++i) {
        (void)tab.of(&targets[i]);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tab.size(), targets.size());
}

}  // namespace
}  // namespace vft::rt
