// Trace minimization: output is a feasible, still-racy subsequence of the
// input and is 1-minimal (no single remaining op can be dropped). Checked
// on hand traces and on generator sweeps.
#include <gtest/gtest.h>

#include "trace/feasibility.h"
#include "trace/generator.h"
#include "trace/hb_oracle.h"
#include "trace/minimize.h"

namespace vft::trace {
namespace {

bool is_subsequence(const Trace& sub, const Trace& full) {
  std::size_t j = 0;
  for (const Op& op : full) {
    if (j < sub.size() && sub[j] == op) ++j;
  }
  return j == sub.size();
}

bool one_minimal(const Trace& t) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    Trace candidate;
    for (std::size_t k = 0; k < t.size(); ++k) {
      if (k != i) candidate.push_back(t[k]);
    }
    if (is_feasible(candidate) && !analyze(candidate).race_free()) {
      return false;  // op i was droppable: not minimal
    }
  }
  return true;
}

TEST(Minimize, TwoOpRaceIsAlreadyMinimal) {
  const Trace t = {wr(0, 0), wr(1, 0)};
  const MinimizeResult r = minimize_racy_trace(t);
  EXPECT_EQ(r.trace, t);
}

TEST(Minimize, DropsIrrelevantPrefixAndSuffix) {
  const Trace t = {acq(0, 5), rd(0, 9), rel(0, 5),  // unrelated prefix
                   wr(0, 0), wr(1, 0),              // the race
                   rd(1, 9), acq(1, 5), rel(1, 5)};  // unrelated suffix
  const MinimizeResult r = minimize_racy_trace(t);
  EXPECT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.trace[0], wr(0, 0));
  EXPECT_EQ(r.trace[1], wr(1, 0));
}

TEST(Minimize, KeepsLockOpsThatWouldBreakFeasibility) {
  // The racing read happens inside a critical section: dropping just the
  // acquire (or just the release) is infeasible, so either both go or
  // both stay. Minimal result: the two conflicting accesses alone.
  const Trace t = {wr(0, 0), acq(1, 3), rd(1, 0), rel(1, 3)};
  const MinimizeResult r = minimize_racy_trace(t);
  ASSERT_TRUE(is_feasible(r.trace));
  EXPECT_EQ(r.trace.size(), 2u);
}

TEST(Minimize, PreservesRaceThroughLockChains) {
  // x's accesses are ordered by m; y's race is hidden in the middle. The
  // minimizer must keep a racy core and drop the lock machinery.
  Trace t;
  ASSERT_TRUE(parse(
      "acq(0,m0); wr(0,x1); rel(0,m0); wr(0,x2); acq(1,m0); wr(1,x1); "
      "rd(1,x2); rel(1,m0)",
      &t));
  ASSERT_FALSE(analyze(t).race_free());
  const MinimizeResult r = minimize_racy_trace(t);
  EXPECT_LE(r.trace.size(), 2u);
  EXPECT_TRUE(one_minimal(r.trace));
}

TEST(Minimize, NonRacyInputReturnedUnchanged) {
  const Trace t = {acq(0, 0), wr(0, 1), rel(0, 0)};
  const MinimizeResult r = minimize_racy_trace(t);
  EXPECT_EQ(r.trace, t);
  EXPECT_EQ(r.oracle_calls, 1u);
}

TEST(Minimize, SweepPropertyOverRandomRacyTraces) {
  std::size_t minimized_total = 0, input_total = 0, racy_seen = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    GeneratorConfig cfg;
    cfg.initial_threads = 3;
    cfg.max_threads = 2;
    cfg.vars = 5;
    cfg.ops = 120;
    cfg.disciplined_fraction = 0.5;
    cfg.seed = seed;
    const Trace t = generate(cfg);
    if (analyze(t).race_free()) continue;
    ++racy_seen;
    const MinimizeResult r = minimize_racy_trace(t);
    ASSERT_TRUE(is_feasible(r.trace)) << seed;
    ASSERT_FALSE(analyze(r.trace).race_free()) << seed;
    ASSERT_TRUE(is_subsequence(r.trace, t)) << seed;
    ASSERT_TRUE(one_minimal(r.trace)) << seed << ": " << to_string(r.trace);
    minimized_total += r.trace.size();
    input_total += t.size();
  }
  ASSERT_GT(racy_seen, 10u);  // the sweep actually exercised minimization
  // Shrinkage is drastic: racy cores are tiny next to 120-op traces.
  EXPECT_LT(minimized_total * 10, input_total);
}

}  // namespace
}  // namespace vft::trace
