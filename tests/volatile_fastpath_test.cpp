// The rt::Volatile same-epoch read fast path ([Volatile Same Epoch]),
// checked over the whole detector family:
//
//   - deterministic multi-threaded schedules, driven by the schedule
//     explorer's replay format (sched::ScriptedOrder - real
//     happens-before the analysis cannot see, so it adds no analysis
//     edges), mirrored step-for-step into the Figure 2 Spec oracle and
//     asserted for race-report parity;
//   - a concurrent stress test: volatile-ordered publication must stay
//     race-free (no false positives from the skipped join) and the same
//     pattern without the volatile ordering must still race (the fast
//     path must not manufacture happens-before).
//
// Each scripted step spans the writer's entire Volatile::store() (or the
// reader's whole load sequence), so a reader's fast_epoch_ check always
// sees the matching publication - that makes the schedules exactly
// replayable in the sequential oracle, and printable/replayable with the
// same "0,1,0,1" notation `vft sched --schedule` speaks.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "kernels/all.h"
#include "runtime/instrument.h"
#include "sched/script.h"
#include "vft/spec.h"

namespace vft {
namespace {

template <typename D>
class VolatileFastPath : public ::testing::Test {};

using AllDetectors =
    ::testing::Types<VftV1, VftV15, VftV2, FtMutex, FtCas, Djit>;
TYPED_TEST_SUITE(VolatileFastPath, AllDetectors);

/// Spin until the raw flag reaches `v` (acquire). Not an analysis event.
/// Only the stress tests still use raw flags; the deterministic
/// schedules below are ScriptedOrder scripts.
void await(const std::atomic<int>& flag, int v) {
  while (flag.load(std::memory_order_acquire) < v) {
    std::this_thread::yield();
  }
}

// --- Deterministic schedules with Spec parity -------------------------------

TYPED_TEST(VolatileFastPath, PublicationParityWithSpec) {
  // t1 writes x, publishes via volatile v; t2 reads v (fast path after
  // the first load), then reads x. Race-free in the oracle and in every
  // detector. Runtime tids: main=0, t1=1, t2=2.
  constexpr int kLoads = 64;  // repeated loads: all but the 1st are fast
  RaceCollector rc;
  rt::Runtime<TypeParam> R{TypeParam(&rc)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  rt::Var<int, TypeParam> x(R, 0);
  rt::Volatile<int, TypeParam> v(R, 0);
  sched::ScriptedOrder order({0, 1});

  rt::Thread<TypeParam> t1(R, [&] {
    order.step(0, [&] {  // the step spans the full store()
      x.store(1);
      v.store(1);
    });
  });
  rt::Thread<TypeParam> t2(R, [&] {
    order.step(1, [&] {
      for (int i = 0; i < kLoads; ++i) EXPECT_EQ(v.load(), 1);
      EXPECT_EQ(x.load(), 1);
    });
  });
  t1.join();
  t2.join();

  Spec oracle;
  oracle.on_fork(0, 1);
  oracle.on_fork(0, 2);
  oracle.on_write(1, /*x=*/1);
  oracle.on_vol_write(1, /*v=*/1);
  bool error = false;
  for (int i = 0; i < kLoads; ++i) error |= oracle.on_vol_read(2, 1).error;
  error |= oracle.on_read(2, 1).error;
  EXPECT_FALSE(error);
  EXPECT_EQ(rc.count(), 0u) << rc.first()->str();
}

TYPED_TEST(VolatileFastPath, MissingOrderingParityWithSpec) {
  // Same schedule but t2 never reads the volatile: the write/read pair
  // is unordered for the analysis (the raw handshake is invisible), so
  // the oracle errors and every detector must report.
  RaceCollector rc;
  rt::Runtime<TypeParam> R{TypeParam(&rc)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  rt::Var<int, TypeParam> x(R, 0);
  rt::Volatile<int, TypeParam> v(R, 0);
  sched::ScriptedOrder order({0, 1});

  rt::Thread<TypeParam> t1(R, [&] {
    order.step(0, [&] {
      x.store(1);
      v.store(1);
    });
  });
  rt::Thread<TypeParam> t2(R, [&] {
    order.step(1, [&] {
      EXPECT_EQ(x.load(), 1);  // no v.load(): races with t1's write
    });
  });
  t1.join();
  t2.join();

  Spec oracle;
  oracle.on_fork(0, 1);
  oracle.on_fork(0, 2);
  oracle.on_write(1, 1);
  oracle.on_vol_write(1, 1);
  const bool error = oracle.on_read(2, 1).error;
  EXPECT_TRUE(error);
  EXPECT_GE(rc.count(), 1u);
}

TYPED_TEST(VolatileFastPath, RepeatedStoresReArmFastPath) {
  // Ping-pong: the writer re-publishes (advancing the volatile's epoch)
  // and the reader must pick up each new publication - a stale fast
  // epoch would leak the previous x write as a race. Race-free.
  constexpr int kRounds = 32;
  RaceCollector rc;
  rt::Runtime<TypeParam> R{TypeParam(&rc)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  rt::Var<int, TypeParam> x(R, 0);
  rt::Volatile<int, TypeParam> v(R, 0);
  rt::Volatile<int, TypeParam> back(R, 0);  // reader -> writer ordering
  sched::Schedule plan;
  for (int r = 0; r < kRounds; ++r) {
    plan.push_back(0);  // writer publishes round r
    plan.push_back(1);  // reader consumes round r
  }
  sched::ScriptedOrder order(plan);

  rt::Thread<TypeParam> writer(R, [&] {
    for (int r = 0; r < kRounds; ++r) {
      order.step(0, [&] {
        (void)back.load();  // the reader's clock arrives via `back`
        x.store(r);
        v.store(r + 1);
      });
    }
  });
  rt::Thread<TypeParam> reader(R, [&] {
    for (int r = 0; r < kRounds; ++r) {
      order.step(1, [&] {
        EXPECT_EQ(v.load(), r + 1);
        EXPECT_EQ(x.load(), r);
        back.store(r + 1);
      });
    }
  });
  writer.join();
  reader.join();

  Spec oracle;
  oracle.on_fork(0, 1);
  oracle.on_fork(0, 2);
  bool error = false;
  for (int r = 0; r < kRounds; ++r) {
    error |= oracle.on_vol_read(1, /*back=*/2).error;
    error |= oracle.on_write(1, 1).error;
    error |= oracle.on_vol_write(1, /*v=*/1).error;
    error |= oracle.on_vol_read(2, 1).error;
    error |= oracle.on_read(2, 1).error;
    error |= oracle.on_vol_write(2, 2).error;
  }
  EXPECT_FALSE(error);
  EXPECT_EQ(rc.count(), 0u) << rc.first()->str();
}

TYPED_TEST(VolatileFastPath, SecondWriterDisablesFastPathSoundly) {
  // Two writers alternate stores to the volatile (each store's clock no
  // longer dominates, so fast_epoch_ falls back to SHARED); a reader
  // then relies on the volatile for ordering against *both* x writers.
  // Race-free; exercises the dominated=false branch.
  RaceCollector rc;
  rt::Runtime<TypeParam> R{TypeParam(&rc)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  rt::Var<int, TypeParam> x(R, 0);
  rt::Var<int, TypeParam> y(R, 0);
  rt::Volatile<int, TypeParam> v(R, 0);
  sched::ScriptedOrder order({0, 1, 2});

  rt::Thread<TypeParam> w1(R, [&] {
    order.step(0, [&] {
      x.store(1);
      v.store(1);
    });
  });
  rt::Thread<TypeParam> w2(R, [&] {
    order.step(1, [&] {
      y.store(1);
      v.store(2);  // does not dominate w1's clock contribution -> SHARED
    });
  });
  rt::Thread<TypeParam> reader(R, [&] {
    order.step(2, [&] {
      EXPECT_EQ(v.load(), 2);  // slow path: joins both writers' clocks
      EXPECT_EQ(x.load(), 1);
      EXPECT_EQ(y.load(), 1);
    });
  });
  w1.join();
  w2.join();
  reader.join();

  Spec oracle;
  oracle.on_fork(0, 1);
  oracle.on_fork(0, 2);
  oracle.on_fork(0, 3);
  bool error = false;
  error |= oracle.on_write(1, /*x=*/1).error;
  error |= oracle.on_vol_write(1, 1).error;
  error |= oracle.on_write(2, /*y=*/2).error;
  error |= oracle.on_vol_write(2, 1).error;
  error |= oracle.on_vol_read(3, 1).error;
  error |= oracle.on_read(3, 1).error;
  error |= oracle.on_read(3, 2).error;
  EXPECT_FALSE(error);
  EXPECT_EQ(rc.count(), 0u) << rc.first()->str();
}

// --- Concurrent stress ------------------------------------------------------

TYPED_TEST(VolatileFastPath, ConcurrentReadersNoFalsePositives) {
  // One publisher, many readers hammering the volatile concurrently:
  // every reader that observes the publication reads the payload. The
  // fast path runs under real concurrency here; any unsoundness in the
  // skipped join surfaces as a (false) race report.
  constexpr int kLoads = 2000;
  RaceCollector rc;
  rt::Runtime<TypeParam> R{TypeParam(&rc)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  rt::Var<int, TypeParam> x(R, 0);
  rt::Volatile<int, TypeParam> v(R, 0);

  rt::parallel_for_threads(R, 4, [&](std::uint32_t w) {
    if (w == 0) {
      x.store(7);
      v.store(1);
    } else {
      int seen = 0;
      for (int i = 0; i < kLoads; ++i) seen = v.load();
      if (seen == 1) {
        EXPECT_EQ(x.load(), 7);
      }
    }
  });
  EXPECT_EQ(rc.count(), 0u) << rc.first()->str();
}

TYPED_TEST(VolatileFastPath, ConcurrentWritersAndReadersNoFalsePositives) {
  // Two volatile writers + two readers; each reader orders a read of the
  // matching payload through the volatile. Exercises fast-path arming,
  // SHARED fall-back, and concurrent slow-path joins all interleaving.
  constexpr int kRounds = 500;
  RaceCollector rc;
  rt::Runtime<TypeParam> R{TypeParam(&rc)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  rt::Var<int, TypeParam> x(R, 0);
  rt::Volatile<int, TypeParam> v(R, 0);
  std::atomic<int> token{0};  // raw alternation so x writes don't self-race

  rt::parallel_for_threads(R, 4, [&](std::uint32_t w) {
    if (w < 2) {
      for (int r = 0; r < kRounds; ++r) {
        await(token, 2 * r + (w == 0 ? 0 : 1));
        (void)v.load();  // absorb the other writer's clock (the raw token
                         // is invisible to the analysis)
        x.store(r);      // exclusive by the token, ordered via v
        v.store(r + 1);
        token.fetch_add(1, std::memory_order_acq_rel);
      }
    } else {
      for (int r = 0; r < kRounds; ++r) {
        if (v.load() != 0) break;  // at least one publication absorbed
      }
      (void)v.load();
    }
  });
  EXPECT_EQ(rc.count(), 0u) << rc.first()->str();
}

}  // namespace
}  // namespace vft
