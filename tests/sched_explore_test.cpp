// Systematic schedule exploration of the lock-free hot paths (the
// src/sched/ harness): exhaustive small-scope suites per scenario,
// schedule-count regression checks (pruning bugs change the counts and
// fail loudly), mutation smoke tests proving the explorer can actually
// find seeded ordering bugs, and replay/artifact round trips.
//
// This binary is compiled with VFT_SCHED (see tests/CMakeLists.txt): the
// detector headers' VFT_SCHED_POINT seams are live, and the whole binary
// (including the runtime TUs it compiles directly) agrees on the
// instrumented VarState layouts.
#include <gtest/gtest.h>

#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "sched/explore.h"
#include "sched/scenarios.h"
#include "sched/schedule.h"
#include "sched/script.h"

namespace vft::sched {
namespace {

static_assert(kEnabled, "this suite requires a VFT_SCHED build");

// Exhaustive exploration of a named scenario; dumps counts and the first
// artifacts so failures are diagnosable straight from the log and new
// baselines are copy-pasteable.
ExploreResult run_dfs(const char* name, const ExploreConfig& cfg = {}) {
  const Scenario* sc = find_scenario(name);
  EXPECT_NE(sc, nullptr) << name;
  ExploreResult r = explore_dfs(sc->make, cfg);
  std::cout << "[sched] " << name << ": schedules=" << r.schedules
            << " sleep_blocked=" << r.sleep_blocked
            << " bound_blocked=" << r.bound_blocked
            << " deadlocks=" << r.deadlocks << " livelocks=" << r.livelocks
            << " failures=" << r.failures << "\n";
  for (FailureArtifact a : r.artifacts) {
    a.scenario = name;
    std::cout << "  " << format_artifact(a) << "\n";
  }
  return r;
}

void expect_clean(const ExploreResult& r) {
  EXPECT_TRUE(r.clean()) << "failures=" << r.failures
                         << " deadlocks=" << r.deadlocks
                         << " livelocks=" << r.livelocks
                         << " capped=" << r.capped;
}

// --- format / sequencer units ---------------------------------------------

TEST(Schedule, RoundTripsThroughText) {
  const Schedule s{0, 1, 1, 0, 2};
  EXPECT_EQ(to_string(s), "0,1,1,0,2");
  EXPECT_EQ(parse_schedule("0,1,1,0,2"), std::optional<Schedule>(s));
  EXPECT_EQ(parse_schedule("0, 1 ,1"), (std::optional<Schedule>({0, 1, 1})));
  EXPECT_FALSE(parse_schedule("").has_value());
  EXPECT_FALSE(parse_schedule("0,,1").has_value());
  EXPECT_FALSE(parse_schedule("0;1").has_value());
}

TEST(Schedule, ArtifactLineIsGreppable) {
  const FailureArtifact a{"v2-read-share", 7, 3, 2, {0, 1, 0}, "boom"};
  EXPECT_EQ(format_artifact(a),
            "VFT-SCHED-FAIL scenario=v2-read-share seed=7 run=3 "
            "preemptions=2 schedule=0,1,0 error=boom");
}

TEST(ScriptedOrder, DrivesRealThreadsInScheduleOrder) {
  ScriptedOrder order({0, 1, 1, 0});
  std::vector<int> log;
  std::thread a([&] {
    order.step(0, [&] { log.push_back(10); });
    order.step(0, [&] { log.push_back(11); });
  });
  std::thread b([&] {
    order.step(1, [&] { log.push_back(20); });
    order.step(1, [&] { log.push_back(21); });
  });
  a.join();
  b.join();
  EXPECT_EQ(log, (std::vector<int>{10, 20, 21, 11}));
  EXPECT_EQ(order.consumed(), 4u);
}

TEST(Conflicting, SameObjectNeedsAWriter) {
  int x = 0, y = 0;
  const PendingOp la{PointKind::kLoad, &x};
  const PendingOp lb{PointKind::kLoad, &y};
  const PendingOp sa{PointKind::kStore, &x};
  const PendingOp ca{PointKind::kCas, &x};
  EXPECT_FALSE(conflicting(la, la));  // read/read commutes
  EXPECT_FALSE(conflicting(la, lb));
  EXPECT_FALSE(conflicting(sa, lb));  // different objects commute
  EXPECT_TRUE(conflicting(la, sa));
  EXPECT_TRUE(conflicting(ca, ca));
  EXPECT_TRUE(conflicting({PointKind::kSpin, &x}, lb));  // conservative
}

// --- harness self-tests ----------------------------------------------------

TEST(SchedExplore, FindsTheToyDeadlock) {
  const ExploreResult r = run_dfs("toy-deadlock");
  EXPECT_GT(r.deadlocks, 0u);   // AB-BA must be found...
  EXPECT_GT(r.schedules, 0u);   // ...and non-deadlocking orders completed
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.livelocks, 0u);
}

TEST(SchedExplore, DfsIsDeterministic) {
  const ExploreResult a = run_dfs("v2-read-share");
  const ExploreResult b = run_dfs("v2-read-share");
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.sleep_blocked, b.sleep_blocked);
  EXPECT_EQ(a.failures, b.failures);
}

TEST(SchedExplore, ReplayRejectsForeignSchedules) {
  const Scenario* sc = find_scenario("v2-read-share");
  ASSERT_NE(sc, nullptr);
  ReplayOutcome bad = replay(sc->make, Schedule{5, 5, 5});
  ASSERT_TRUE(bad.error.has_value());
  EXPECT_NE(bad.error->find("does not match"), std::string::npos);

  ReplayOutcome short_one = replay(sc->make, Schedule{0});
  ASSERT_TRUE(short_one.error.has_value());
  EXPECT_NE(short_one.error->find("ended before"), std::string::npos);
}

TEST(SchedExplore, ReplayReproducesACompleteSchedule) {
  // Take any complete schedule found by DFS and re-execute it: it must
  // complete and pass the oracle check again.
  const Scenario* sc = find_scenario("v2-read-share");
  ASSERT_NE(sc, nullptr);
  Schedule first;
  ExploreConfig cfg;
  cfg.max_schedules = 1;
  Scheduler sched;
  Instance inst = sc->make();
  const Scheduler::Result r = sched.run(
      inst.bodies, [](const std::vector<ThreadView>& views) {
        for (const ThreadView& v : views) {
          if (v.enabled) return std::optional<std::uint32_t>(v.tid);
        }
        return std::optional<std::uint32_t>();
      });
  ASSERT_TRUE(r.completed);
  const ReplayOutcome again = replay(sc->make, r.schedule);
  EXPECT_TRUE(again.result.completed);
  EXPECT_FALSE(again.error.has_value()) << *again.error;
}

// --- exhaustive scenario suites -------------------------------------------
// The EXPECT_EQ baselines pin the schedule counts: a pruning regression
// (or an instrumentation point added/removed from a hot path) changes
// them and must be acknowledged by re-baselining.

TEST(SchedExplore, V2ReadShareExhaustive) {
  const ExploreResult r = run_dfs("v2-read-share");
  expect_clean(r);
  EXPECT_EQ(r.schedules, 62u);
}

TEST(SchedExplore, V2ReadWriteRaceExhaustive) {
  const ExploreResult r = run_dfs("v2-read-write-race");
  expect_clean(r);
  EXPECT_EQ(r.schedules, 18u);
}

TEST(SchedExplore, FtCasReadShareExhaustive) {
  const ExploreResult r = run_dfs("ftcas-read-share");
  expect_clean(r);
  EXPECT_EQ(r.schedules, 42u);
}

TEST(SchedExplore, FtCasReadWriteRaceExhaustive) {
  const ExploreResult r = run_dfs("ftcas-read-write-race");
  expect_clean(r);
  EXPECT_EQ(r.schedules, 16u);
}

TEST(SchedExplore, PackedEscalateExhaustive) {
  const ExploreResult r = run_dfs("packed-escalate");
  expect_clean(r);
  // Acceptance criterion: the two-thread escalation scenario visits at
  // least 100 distinct schedules, every terminal state Spec-checked
  // (expect_clean above: zero failures out of all of them).
  EXPECT_GE(r.schedules, 100u);
  EXPECT_EQ(r.schedules, 970u);
}

TEST(SchedExplore, PackedWriteRaceExhaustive) {
  const ExploreResult r = run_dfs("packed-write-race");
  expect_clean(r);
  EXPECT_EQ(r.schedules, 16u);
}

TEST(SchedExplore, PackedMissedRaceBounded) {
  // Both threads take the full slow path here (contended escalation), so
  // unbounded DFS is out of reach; preemption bound 2 still covers every
  // window the publication protocol has (the seeded bug needs one).
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  const ExploreResult r = run_dfs("packed-missed-race", cfg);
  expect_clean(r);
  EXPECT_EQ(r.schedules, 105u);
}

TEST(SchedExplore, VolatilePublishBounded) {
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  const ExploreResult r = run_dfs("volatile-publish", cfg);
  expect_clean(r);
  EXPECT_EQ(r.schedules, 25u);
}

TEST(SchedExplore, VolatileStaleEpochBounded) {
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  const ExploreResult r = run_dfs("volatile-stale-epoch", cfg);
  expect_clean(r);
  EXPECT_EQ(r.schedules, 66u);
}

// Atomic sync-state scenarios (vft/atomics.h): every interleaving of the
// fast-epoch arm CAS, the acquire load's fast-skip read, and the sync
// mutex sections is Spec-checked, including that the relaxed variant
// reports the race in every schedule its gate makes reachable.

TEST(SchedExplore, AtomicHandoffExhaustive) {
  const ExploreResult r = run_dfs("atomic-handoff");
  expect_clean(r);
  EXPECT_EQ(r.schedules, 22u);
}

TEST(SchedExplore, AtomicHandoffRelaxedExhaustive) {
  const ExploreResult r = run_dfs("atomic-handoff-relaxed");
  expect_clean(r);
  EXPECT_EQ(r.schedules, 9u);
}

TEST(SchedExplore, AtomicCasPublishExhaustive) {
  const ExploreResult r = run_dfs("atomic-cas-publish");
  expect_clean(r);
  EXPECT_EQ(r.schedules, 312u);
}

TEST(SchedExplore, SleepSetsOnlyPrune) {
  // Same scenario with pruning off: strictly more schedules, same verdict.
  // (v2-read-share, not packed-escalate: the latter's unpruned space is
  // ~500k schedules - correct, but minutes of test time for no signal.)
  ExploreConfig off;
  off.sleep_sets = false;
  const ExploreResult full = run_dfs("v2-read-share", off);
  const ExploreResult pruned = run_dfs("v2-read-share");
  expect_clean(full);
  EXPECT_GT(full.schedules, pruned.schedules);
  EXPECT_EQ(full.failures, pruned.failures);
}

// --- mutation smoke tests --------------------------------------------------
// A harness that explores but cannot fail is worthless: seed each of the
// two ordering bugs, assert the explorer finds it, replay the artifact,
// then assert the unmutated build is clean again.

TEST(SchedMutation, VolatileValueBeforeArmIsCaught) {
  Mutations::reset();
  const Scenario* sc = find_scenario("volatile-stale-epoch");
  ASSERT_NE(sc, nullptr);
  ExploreConfig cfg;
  // The bug is depth 3: the reader must slow-join after the first arm,
  // the writer must then advance into its mutated store, and the reader
  // must cut in between the early value publish and the re-arm - three
  // switches away from a still-runnable thread. Bound 2 provably cannot
  // see it (we measured 0/57); bound 3 is the minimal exposing bound.
  cfg.preemption_bound = 3;
  {
    ScopedMutation arm(Mutations::volatile_value_before_arm);
    const ExploreResult r = explore_dfs(sc->make, cfg);
    std::cout << "[sched] mutated volatile-stale-epoch: failures="
              << r.failures << "/" << r.schedules << "\n";
    ASSERT_GT(r.failures, 0u);
    ASSERT_FALSE(r.artifacts.empty());
    // The recorded schedule reproduces the violation while the bug is in.
    const ReplayOutcome again = replay(sc->make, r.artifacts[0].schedule);
    ASSERT_TRUE(again.error.has_value());
    EXPECT_EQ(*again.error, r.artifacts[0].error);
  }
  // Knob off: same exploration is clean (the negative control).
  const ExploreResult clean = explore_dfs(sc->make, cfg);
  EXPECT_EQ(clean.failures, 0u);
}

TEST(SchedMutation, EscalatePublishBeforeInjectIsCaught) {
  Mutations::reset();
  const Scenario* sc = find_scenario("packed-missed-race");
  ASSERT_NE(sc, nullptr);
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  {
    ScopedMutation arm(Mutations::escalate_publish_before_inject);
    const ExploreResult r = explore_dfs(sc->make, cfg);
    std::cout << "[sched] mutated packed-missed-race: failures=" << r.failures
              << "/" << r.schedules << "\n";
    ASSERT_GT(r.failures, 0u);
    ASSERT_FALSE(r.artifacts.empty());
    const ReplayOutcome again = replay(sc->make, r.artifacts[0].schedule);
    ASSERT_TRUE(again.error.has_value());
    EXPECT_EQ(*again.error, r.artifacts[0].error);
  }
  const ExploreResult clean = explore_dfs(sc->make, cfg);
  EXPECT_EQ(clean.failures, 0u);
}

// --- PCT sampler -----------------------------------------------------------

TEST(SchedPct, IsDeterministicPerSeed) {
  const Scenario* sc = find_scenario("packed-escalate");
  ASSERT_NE(sc, nullptr);
  PctConfig cfg;
  cfg.seed = 42;
  cfg.runs = 25;
  const PctResult a = explore_pct(sc->make, cfg);
  const PctResult b = explore_pct(sc->make, cfg);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.failures, 0u);
}

TEST(SchedPct, FindsTheSeededEscalationBugAndArtifactReplays) {
  // PCT is targeted at the depth-2 escalation bug: its failure window is
  // wide (a quarter of bounded DFS schedules expose it), which is the
  // regime PCT's depth-d guarantee covers. The depth-3 volatile bug's
  // window is a single schedule in ~116 - that one stays DFS-only above.
  Mutations::reset();
  const Scenario* sc = find_scenario("packed-missed-race");
  ASSERT_NE(sc, nullptr);
  PctConfig cfg;
  cfg.seed = 1;
  cfg.preemptions = 3;
  cfg.runs = 200;
  cfg.length_hint = 32;
  ScopedMutation arm(Mutations::escalate_publish_before_inject);
  const PctResult r = explore_pct(sc->make, cfg);
  std::cout << "[sched] PCT mutated packed-missed-race: failures="
            << r.failures << "/" << r.runs << "\n";
  ASSERT_GT(r.failures, 0u);
  ASSERT_FALSE(r.artifacts.empty());
  FailureArtifact a = r.artifacts[0];
  a.scenario = "packed-missed-race";
  std::cout << "  " << format_artifact(a) << "\n";
  // The CI triage loop: the schedule alone reproduces the failure.
  const ReplayOutcome again = replay(sc->make, a.schedule);
  ASSERT_TRUE(again.error.has_value());
  EXPECT_EQ(*again.error, a.error);
}

}  // namespace
}  // namespace vft::sched
