// RaceCollector and report formatting.
#include "vft/report.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace vft {
namespace {

RaceReport sample(RaceKind k, std::uint64_t var) {
  return RaceReport{k, var, 2, Epoch::make(1, 5), Epoch::make(2, 3)};
}

TEST(RaceCollector, StartsEmpty) {
  RaceCollector c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.count(), 0u);
  EXPECT_FALSE(c.first().has_value());
}

TEST(RaceCollector, RecordsInOrder) {
  RaceCollector c;
  c.report(sample(RaceKind::kWriteWrite, 1));
  c.report(sample(RaceKind::kReadWrite, 2));
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.first()->var, 1u);
  EXPECT_EQ(c.all()[1].var, 2u);
}

TEST(RaceCollector, ClearResets) {
  RaceCollector c;
  c.report(sample(RaceKind::kWriteRead, 3));
  c.clear();
  EXPECT_TRUE(c.empty());
}

TEST(RaceCollector, ConcurrentReportsAllLand) {
  RaceCollector c;
  constexpr int kThreads = 4, kEach = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < kEach; ++i) {
        c.report(sample(RaceKind::kWriteWrite,
                        static_cast<std::uint64_t>(t * kEach + i)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.count(), static_cast<std::size_t>(kThreads * kEach));
}

TEST(RaceReport, StrNamesKindThreadsAndEpochs) {
  const std::string s = sample(RaceKind::kSharedWrite, 42).str();
  EXPECT_NE(s.find("shared-write race"), std::string::npos);
  EXPECT_NE(s.find("var 42"), std::string::npos);
  EXPECT_NE(s.find("thread 2"), std::string::npos);
  EXPECT_NE(s.find("1@5"), std::string::npos);
  EXPECT_NE(s.find("2@3"), std::string::npos);
}

TEST(RaceCollector, PerVarLimitSuppressesButCounts) {
  RaceCollector c;
  c.set_per_var_limit(2);
  for (int i = 0; i < 5; ++i) c.report(sample(RaceKind::kWriteWrite, 7));
  c.report(sample(RaceKind::kWriteWrite, 8));  // different var: unaffected
  EXPECT_EQ(c.count(), 3u);       // 2 for var 7, 1 for var 8
  EXPECT_EQ(c.suppressed(), 3u);  // the other 3 for var 7
  EXPECT_FALSE(c.empty());        // suppression still means "racy run"
}

TEST(RaceCollector, TotalLimitCapsStorage) {
  RaceCollector c;
  c.set_total_limit(3);
  for (std::uint64_t v = 0; v < 10; ++v) {
    c.report(sample(RaceKind::kReadWrite, v));
  }
  EXPECT_EQ(c.count(), 3u);
  EXPECT_EQ(c.suppressed(), 7u);
}

TEST(RaceCollector, ClearResetsLimitsCountsAndSuppression) {
  RaceCollector c;
  c.set_per_var_limit(1);
  c.report(sample(RaceKind::kWriteRead, 1));
  c.report(sample(RaceKind::kWriteRead, 1));
  c.clear();
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.suppressed(), 0u);
  c.report(sample(RaceKind::kWriteRead, 1));  // budget is fresh again
  EXPECT_EQ(c.count(), 1u);
}

TEST(RaceCollector, DescribeUsesRegisteredNames) {
  RaceCollector c;
  c.name_var(42, "Account.balance");
  const std::string with_name = c.describe(sample(RaceKind::kWriteWrite, 42));
  EXPECT_NE(with_name.find("Account.balance"), std::string::npos);
  const std::string without = c.describe(sample(RaceKind::kWriteWrite, 43));
  EXPECT_NE(without.find("var 43"), std::string::npos);
}

TEST(RaceKindNames, AllDistinct) {
  EXPECT_STRNE(race_kind_name(RaceKind::kWriteRead),
               race_kind_name(RaceKind::kWriteWrite));
  EXPECT_STRNE(race_kind_name(RaceKind::kReadWrite),
               race_kind_name(RaceKind::kSharedWrite));
}

}  // namespace
}  // namespace vft
