// RaceCollector behaviour: error-context folding, report formatting,
// limits, and the flat compatibility views.
//
// Reports here carry no call stack (unit-level callers never arm the
// interposition boundary), so contexts key on (kind, var) - the
// documented fallback - and "one context" below means one distinct
// (kind, var) pair.
#include "vft/report.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace vft {
namespace {

RaceReport sample(RaceKind k, std::uint64_t var) {
  return RaceReport{k, var, 2, Epoch::make(1, 5), Epoch::make(2, 3), {}};
}

TEST(RaceCollector, StartsEmpty) {
  RaceCollector c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.count(), 0u);
  EXPECT_EQ(c.context_count(), 0u);
  EXPECT_FALSE(c.first().has_value());
}

TEST(RaceCollector, RecordsInOrder) {
  RaceCollector c;
  c.report(sample(RaceKind::kWriteWrite, 1));
  c.report(sample(RaceKind::kReadWrite, 2));
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.context_count(), 2u);
  EXPECT_EQ(c.first()->var, 1u);
  EXPECT_EQ(c.all()[1].var, 2u);
}

TEST(RaceCollector, DuplicateOccurrencesFoldIntoOneContext) {
  RaceCollector c;
  for (int i = 0; i < 5; ++i) c.report(sample(RaceKind::kWriteWrite, 7));
  EXPECT_EQ(c.count(), 5u);          // every occurrence still counts
  EXPECT_EQ(c.context_count(), 1u);  // ...in one deduplicated context
  ASSERT_EQ(c.contexts().size(), 1u);
  EXPECT_EQ(c.contexts()[0].count, 5u);
  EXPECT_EQ(c.all().size(), 5u);  // flat view expands the count
}

TEST(RaceCollector, DistinctKindsAreDistinctContexts) {
  RaceCollector c;
  c.report(sample(RaceKind::kWriteWrite, 7));
  c.report(sample(RaceKind::kWriteRead, 7));
  EXPECT_EQ(c.context_count(), 2u);
}

TEST(RaceCollector, ClearResets) {
  RaceCollector c;
  c.report(sample(RaceKind::kWriteRead, 3));
  c.clear();
  EXPECT_TRUE(c.empty());
}

TEST(RaceCollector, ConcurrentReportsAllLand) {
  RaceCollector c;
  constexpr int kThreads = 4, kEach = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < kEach; ++i) {
        c.report(sample(RaceKind::kWriteWrite,
                        static_cast<std::uint64_t>(t * kEach + i)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.count(), static_cast<std::size_t>(kThreads * kEach));
}

TEST(RaceCollector, ConcurrentSameContextCountsEveryOccurrence) {
  RaceCollector c;
  constexpr int kThreads = 4, kEach = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kEach; ++i) {
        c.report(sample(RaceKind::kWriteWrite, 7));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.count(), static_cast<std::size_t>(kThreads * kEach));
  EXPECT_EQ(c.context_count(), 1u);
}

TEST(RaceReport, StrNamesKindThreadsAndEpochs) {
  const std::string s = sample(RaceKind::kSharedWrite, 42).str();
  EXPECT_NE(s.find("shared-write race"), std::string::npos);
  EXPECT_NE(s.find("var 42"), std::string::npos);
  EXPECT_NE(s.find("thread 2"), std::string::npos);
  EXPECT_NE(s.find("1@5"), std::string::npos);
  EXPECT_NE(s.find("2@3"), std::string::npos);
}

TEST(RaceCollector, PerVarLimitHidesExcessContextsButCounts) {
  RaceCollector c;
  c.set_per_var_limit(2);
  // Three distinct contexts on var 7 (three kinds); the third arrives
  // over the limit and is recorded hidden.
  c.report(sample(RaceKind::kWriteWrite, 7));
  c.report(sample(RaceKind::kWriteRead, 7));
  c.report(sample(RaceKind::kReadWrite, 7));
  c.report(sample(RaceKind::kWriteWrite, 8));  // different var: unaffected
  EXPECT_EQ(c.count(), 3u);       // 2 visible for var 7, 1 for var 8
  EXPECT_EQ(c.suppressed(), 1u);  // the over-limit context's occurrence
  EXPECT_FALSE(c.empty());        // suppression still means "racy run"
  // Repeats of an already-visible context are never limited - dedup
  // made the limits context guards, not occurrence guards.
  c.report(sample(RaceKind::kWriteWrite, 7));
  EXPECT_EQ(c.count(), 4u);
  // Repeats of the hidden context keep accruing to suppressed.
  c.report(sample(RaceKind::kReadWrite, 7));
  EXPECT_EQ(c.suppressed(), 2u);
}

TEST(RaceCollector, TotalLimitCapsVisibleContexts) {
  RaceCollector c;
  c.set_total_limit(3);
  for (std::uint64_t v = 0; v < 10; ++v) {
    c.report(sample(RaceKind::kReadWrite, v));
  }
  EXPECT_EQ(c.count(), 3u);
  EXPECT_EQ(c.context_count(), 3u);
  EXPECT_EQ(c.suppressed(), 7u);
}

TEST(RaceCollector, ClearResetsLimitsCountsAndSuppression) {
  RaceCollector c;
  c.set_per_var_limit(1);
  c.report(sample(RaceKind::kWriteRead, 1));
  c.report(sample(RaceKind::kWriteWrite, 1));  // second context: hidden
  EXPECT_EQ(c.suppressed(), 1u);
  c.clear();
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.suppressed(), 0u);
  c.report(sample(RaceKind::kWriteRead, 1));  // budget is fresh again
  EXPECT_EQ(c.count(), 1u);
}

TEST(RaceCollector, DescribeUsesRegisteredNames) {
  RaceCollector c;
  c.name_var(42, "Account.balance");
  const std::string with_name = c.describe(sample(RaceKind::kWriteWrite, 42));
  EXPECT_NE(with_name.find("Account.balance"), std::string::npos);
  const std::string without = c.describe(sample(RaceKind::kWriteWrite, 43));
  EXPECT_NE(without.find("var 43"), std::string::npos);
}

TEST(RaceKindNames, AllDistinct) {
  EXPECT_STRNE(race_kind_name(RaceKind::kWriteRead),
               race_kind_name(RaceKind::kWriteWrite));
  EXPECT_STRNE(race_kind_name(RaceKind::kReadWrite),
               race_kind_name(RaceKind::kSharedWrite));
}

TEST(RaceCollector, StackedReportsKeyByStackNotVar) {
  RaceCollector c;
  RaceReport a = sample(RaceKind::kWriteWrite, 1);
  a.stack.push(0x1000);
  a.stack.push(0x2000);
  RaceReport b = sample(RaceKind::kWriteWrite, 2);  // different var...
  b.stack.push(0x1000);
  b.stack.push(0x2000);  // ...same racing call stack
  c.report(a);
  c.report(b);
  EXPECT_EQ(c.context_count(), 1u);  // one access site = one context
  EXPECT_EQ(c.count(), 2u);

  RaceReport d = sample(RaceKind::kWriteWrite, 1);
  d.stack.push(0x3000);  // same var, different site: a new context
  c.report(d);
  EXPECT_EQ(c.context_count(), 2u);
}

}  // namespace
}  // namespace vft
