// Feasibility checker: each Section 2 constraint, accepted and violated.
#include "trace/feasibility.h"

#include <gtest/gtest.h>

namespace vft::trace {
namespace {

TEST(Feasibility, EmptyTraceIsFeasible) {
  EXPECT_TRUE(is_feasible({}));
}

TEST(Feasibility, SimpleLockDisciplineIsFeasible) {
  EXPECT_TRUE(is_feasible({acq(0, 0), wr(0, 1), rel(0, 0),
                           acq(1, 0), rd(1, 1), rel(1, 0)}));
}

TEST(Feasibility, DoubleAcquireRejected) {
  const auto err = check_feasible({acq(0, 0), acq(1, 0)});
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->index, 1u);
}

TEST(Feasibility, SelfDoubleAcquireRejected) {
  // Locks are not reentrant in the trace language (constraint 1).
  EXPECT_FALSE(is_feasible({acq(0, 0), acq(0, 0)}));
}

TEST(Feasibility, ReleaseWithoutAcquireRejected) {
  EXPECT_FALSE(is_feasible({rel(0, 0)}));
}

TEST(Feasibility, ReleaseByNonHolderRejected) {
  EXPECT_FALSE(is_feasible({acq(0, 0), rel(1, 0)}));
}

TEST(Feasibility, ReacquireAfterReleaseOk) {
  EXPECT_TRUE(is_feasible({acq(0, 0), rel(0, 0), acq(0, 0), rel(0, 0)}));
}

TEST(Feasibility, ForkTwiceRejected) {
  EXPECT_FALSE(is_feasible({fork(0, 1), rd(1, 0), join(0, 1), fork(0, 1)}));
  EXPECT_FALSE(is_feasible({fork(0, 1), fork(2, 1)}));
}

TEST(Feasibility, SelfForkAndSelfJoinRejected) {
  EXPECT_FALSE(is_feasible({fork(0, 0)}));
  EXPECT_FALSE(is_feasible({fork(0, 1), rd(1, 0), join(1, 1)}));
}

TEST(Feasibility, OpBeforeForkRejected) {
  EXPECT_FALSE(is_feasible({rd(1, 0), fork(0, 1)}));
}

TEST(Feasibility, OpAfterJoinRejected) {
  EXPECT_FALSE(is_feasible({fork(0, 1), rd(1, 0), join(0, 1), wr(1, 0)}));
}

TEST(Feasibility, JoinRequiresChildOp) {
  // Constraint (5): >= 1 op of the child between fork and join.
  EXPECT_FALSE(is_feasible({fork(0, 1), join(0, 1)}));
  EXPECT_TRUE(is_feasible({fork(0, 1), rd(1, 0), join(0, 1)}));
}

TEST(Feasibility, JoinOnNeverForkedRejected) {
  EXPECT_FALSE(is_feasible({rd(1, 0), join(0, 1)}));
}

TEST(Feasibility, InitialThreadsNeedNoFork) {
  // Threads may exist from the start of the trace (like A and B in Fig 1).
  EXPECT_TRUE(is_feasible({rd(0, 0), rd(1, 0), wr(2, 1)}));
}

TEST(Feasibility, ErrorCarriesIndexAndMessage) {
  const auto err = check_feasible({acq(0, 0), rd(0, 1), rel(1, 0)});
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->index, 2u);
  EXPECT_NE(err->message.find("release"), std::string::npos);
}

TEST(Feasibility, TidBoundEnforced) {
  EXPECT_FALSE(is_feasible({rd(1000, 0)}));
}

}  // namespace
}  // namespace vft::trace
