// Handler-level unit tests, typed over the whole detector family: each
// Figure 2 rule exercised directly against ThreadState/VarState objects,
// with the analysis-state outcome and the race verdict checked.
//
// FT-Mutex and FT-CAS are constructed with the VerifiedFT rule set here so
// that all five epoch detectors satisfy the same specification; their
// original-rules behaviour is covered in ft_variants_test.cpp.
#include <gtest/gtest.h>

#include "vft/detector.h"

namespace vft {
namespace {

// --- uniform construction and VarState field access across the family ---

template <typename D>
D make_detector(RaceCollector* rc) {
  return D(rc, nullptr);
}
template <>
FtMutex make_detector<FtMutex>(RaceCollector* rc) {
  return FtMutex(rc, nullptr, RuleSet::kVerifiedFT);
}
template <>
FtCas make_detector<FtCas>(RaceCollector* rc) {
  return FtCas(rc, nullptr, RuleSet::kVerifiedFT);
}

Epoch get_r(VftV1::VarState& v) { return v.R; }
Epoch get_w(VftV1::VarState& v) { return v.W; }
Epoch get_vslot(VftV1::VarState& v, Tid t) { return v.V.get(t); }

Epoch get_r(SyncVarState& v) { return v.R.load(); }
Epoch get_w(SyncVarState& v) { return v.W.load(); }
Epoch get_vslot(SyncVarState& v, Tid t) { return v.V.get(t); }

Epoch get_r(FtCas::VarState& v) {
  return FtCas::VarState::unpack_r(v.rw.load());
}
Epoch get_w(FtCas::VarState& v) {
  return FtCas::VarState::unpack_w(v.rw.load());
}
Epoch get_vslot(FtCas::VarState& v, Tid t) { return v.V.get(t); }

template <typename D>
class DetectorRules : public ::testing::Test {
 protected:
  DetectorRules()
      : d(make_detector<D>(&races)), t0(0), t1(1), t2(2) {}

  /// Advance a thread into a fresh epoch (like a release would).
  void bump(ThreadState& ts) { ts.inc(); }

  /// Order: make `later` aware of everything `earlier` did so far.
  void happens_before(ThreadState& earlier, ThreadState& later) {
    later.join(earlier.V);
    bump(earlier);
  }

  RaceCollector races;
  D d;
  ThreadState t0, t1, t2;
  typename D::VarState x;
};

using EpochDetectors =
    ::testing::Types<VftV1, VftV15, VftV2, FtMutex, FtCas>;
TYPED_TEST_SUITE(DetectorRules, EpochDetectors);

TYPED_TEST(DetectorRules, FreshVarReadsAndWritesCleanly) {
  EXPECT_TRUE(this->d.read(this->t0, this->x));
  EXPECT_TRUE(this->d.write(this->t0, this->x));
  EXPECT_TRUE(this->races.empty());
}

TYPED_TEST(DetectorRules, ReadExclusiveRecordsEpoch) {
  ASSERT_TRUE(this->d.read(this->t0, this->x));
  EXPECT_EQ(get_r(this->x), this->t0.epoch());
}

TYPED_TEST(DetectorRules, ReadSameEpochLeavesStateUntouched) {
  ASSERT_TRUE(this->d.read(this->t0, this->x));
  const Epoch r = get_r(this->x);
  ASSERT_TRUE(this->d.read(this->t0, this->x));
  EXPECT_EQ(get_r(this->x), r);
}

TYPED_TEST(DetectorRules, ReadExclusiveAdvancesAcrossEpochs) {
  ASSERT_TRUE(this->d.read(this->t0, this->x));
  this->bump(this->t0);
  ASSERT_TRUE(this->d.read(this->t0, this->x));
  EXPECT_EQ(get_r(this->x), this->t0.epoch());
  EXPECT_FALSE(get_r(this->x).is_shared());
}

TYPED_TEST(DetectorRules, OrderedReadByOtherThreadStaysExclusive) {
  ASSERT_TRUE(this->d.read(this->t0, this->x));
  this->happens_before(this->t0, this->t1);
  ASSERT_TRUE(this->d.read(this->t1, this->x));
  EXPECT_EQ(get_r(this->x), this->t1.epoch());
  EXPECT_FALSE(get_r(this->x).is_shared());
}

TYPED_TEST(DetectorRules, ConcurrentReadsShare) {
  ASSERT_TRUE(this->d.read(this->t0, this->x));
  const Epoch first = get_r(this->x);
  ASSERT_TRUE(this->d.read(this->t1, this->x));  // concurrent
  EXPECT_TRUE(get_r(this->x).is_shared());
  EXPECT_EQ(get_vslot(this->x, 0), first);
  EXPECT_EQ(get_vslot(this->x, 1), this->t1.epoch());
  EXPECT_TRUE(this->races.empty());
}

TYPED_TEST(DetectorRules, SharedReadUpdatesOwnSlotOnly) {
  ASSERT_TRUE(this->d.read(this->t0, this->x));
  ASSERT_TRUE(this->d.read(this->t1, this->x));  // -> SHARED
  ASSERT_TRUE(this->d.read(this->t2, this->x));
  EXPECT_EQ(get_vslot(this->x, 2), this->t2.epoch());
  EXPECT_EQ(get_vslot(this->x, 0), Epoch::make(0, 1));
}

TYPED_TEST(DetectorRules, ReadSharedSameEpochIsStable) {
  ASSERT_TRUE(this->d.read(this->t0, this->x));
  ASSERT_TRUE(this->d.read(this->t1, this->x));  // -> SHARED
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(this->d.read(this->t1, this->x));
    EXPECT_EQ(get_vslot(this->x, 1), this->t1.epoch());
  }
  EXPECT_TRUE(this->races.empty());
}

TYPED_TEST(DetectorRules, WriteExclusiveRecordsEpoch) {
  ASSERT_TRUE(this->d.write(this->t0, this->x));
  EXPECT_EQ(get_w(this->x), this->t0.epoch());
}

TYPED_TEST(DetectorRules, WriteSameEpochLeavesStateUntouched) {
  ASSERT_TRUE(this->d.write(this->t0, this->x));
  const Epoch w = get_w(this->x);
  ASSERT_TRUE(this->d.write(this->t0, this->x));
  EXPECT_EQ(get_w(this->x), w);
  EXPECT_TRUE(this->races.empty());
}

TYPED_TEST(DetectorRules, OrderedWriteAfterWriteOk) {
  ASSERT_TRUE(this->d.write(this->t0, this->x));
  this->happens_before(this->t0, this->t1);
  ASSERT_TRUE(this->d.write(this->t1, this->x));
  EXPECT_EQ(get_w(this->x), this->t1.epoch());
  EXPECT_TRUE(this->races.empty());
}

TYPED_TEST(DetectorRules, WriteSharedKeepsSharedMode) {
  ASSERT_TRUE(this->d.read(this->t0, this->x));
  ASSERT_TRUE(this->d.read(this->t1, this->x));  // -> SHARED
  this->happens_before(this->t0, this->t2);
  this->happens_before(this->t1, this->t2);
  ASSERT_TRUE(this->d.write(this->t2, this->x));
  EXPECT_TRUE(this->races.empty());
  // The VerifiedFT [Write Shared] rule does not reset R (Section 3).
  EXPECT_TRUE(get_r(this->x).is_shared());
  EXPECT_EQ(get_w(this->x), this->t2.epoch());
}

// --- race rules ---

TYPED_TEST(DetectorRules, WriteWriteRaceDetected) {
  ASSERT_TRUE(this->d.write(this->t0, this->x));
  EXPECT_FALSE(this->d.write(this->t1, this->x));
  ASSERT_EQ(this->races.count(), 1u);
  EXPECT_EQ(this->races.first()->kind, RaceKind::kWriteWrite);
  EXPECT_EQ(this->races.first()->current_tid, 1u);
}

TYPED_TEST(DetectorRules, WriteReadRaceDetected) {
  ASSERT_TRUE(this->d.write(this->t0, this->x));
  EXPECT_FALSE(this->d.read(this->t1, this->x));
  ASSERT_EQ(this->races.count(), 1u);
  EXPECT_EQ(this->races.first()->kind, RaceKind::kWriteRead);
}

TYPED_TEST(DetectorRules, ReadWriteRaceDetected) {
  ASSERT_TRUE(this->d.read(this->t0, this->x));
  EXPECT_FALSE(this->d.write(this->t1, this->x));
  ASSERT_EQ(this->races.count(), 1u);
  EXPECT_EQ(this->races.first()->kind, RaceKind::kReadWrite);
}

TYPED_TEST(DetectorRules, SharedWriteRaceDetected) {
  ASSERT_TRUE(this->d.read(this->t0, this->x));
  ASSERT_TRUE(this->d.read(this->t1, this->x));  // -> SHARED
  this->happens_before(this->t0, this->t2);      // knows t0 but not t1
  EXPECT_FALSE(this->d.write(this->t2, this->x));
  ASSERT_EQ(this->races.count(), 1u);
  EXPECT_EQ(this->races.first()->kind, RaceKind::kSharedWrite);
}

TYPED_TEST(DetectorRules, CheckingContinuesAfterRace) {
  ASSERT_TRUE(this->d.write(this->t0, this->x));
  EXPECT_FALSE(this->d.write(this->t1, this->x));
  // Fail-over: the state was force-updated to t1's write, so t1 can
  // proceed race-free and a *new* unordered thread still trips a report.
  EXPECT_TRUE(this->d.write(this->t1, this->x));  // same epoch now
  EXPECT_FALSE(this->d.write(this->t2, this->x));
  EXPECT_EQ(this->races.count(), 2u);
}

TYPED_TEST(DetectorRules, RaceReportCarriesVarId) {
  this->x.id = 0xBEEF;
  ASSERT_TRUE(this->d.write(this->t0, this->x));
  EXPECT_FALSE(this->d.write(this->t1, this->x));
  EXPECT_EQ(this->races.first()->var, 0xBEEFu);
}

// --- sync handlers (common to the family) ---

TYPED_TEST(DetectorRules, AcquireJoinsLockClock) {
  LockState m;
  this->d.write(this->t0, this->x);
  this->d.release(this->t0, m);
  const Epoch w_epoch = Epoch::make(0, 1);
  this->d.acquire(this->t1, m);
  EXPECT_TRUE(leq(w_epoch, this->t1.V.get(0)));
  EXPECT_TRUE(this->d.write(this->t1, this->x));  // ordered now
  EXPECT_TRUE(this->races.empty());
}

TYPED_TEST(DetectorRules, ReleaseStartsNewEpoch) {
  LockState m;
  const Epoch before = this->t0.epoch();
  this->d.release(this->t0, m);
  EXPECT_EQ(this->t0.epoch(), before.inc());
  EXPECT_EQ(m.V.get(0), before);
}

TYPED_TEST(DetectorRules, ForkOrdersParentBeforeChild) {
  ThreadState child(3);
  this->d.write(this->t0, this->x);
  this->d.fork(this->t0, child);
  EXPECT_TRUE(this->d.write(child, this->x));
  EXPECT_TRUE(this->races.empty());
}

TYPED_TEST(DetectorRules, JoinOrdersChildBeforeParent) {
  ThreadState child(3);
  this->d.fork(this->t0, child);
  this->d.write(child, this->x);
  this->d.join(this->t0, child);
  EXPECT_TRUE(this->d.write(this->t0, this->x));
  EXPECT_TRUE(this->races.empty());
  // VerifiedFT's [Join] does not advance the child's own epoch.
  EXPECT_EQ(child.epoch(), Epoch::make(3, 1));
}

}  // namespace
}  // namespace vft
