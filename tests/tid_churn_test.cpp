// Tid-churn stress: a long-running target forks and joins far more
// threads over its lifetime than the epoch encoding has tids
// (Epoch::kMaxTid+1 = 2^kTidBits - 1 live at once), across all six
// detectors. Slot reuse must keep the allocated-tid footprint bounded by
// the *live* population, and the reused slots' inherited clocks must not
// manufacture false races in join-ordered or lock-ordered programs.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "runtime/instrument.h"
#include "vft/detector.h"

namespace vft::rt {
namespace {

// Total threads forked per detector; far beyond the 255-tid space while
// only kWindow are ever live together.
constexpr int kTotalThreads = 3 * (Epoch::kMaxTid + 1) + 19;
constexpr int kWindow = 8;

template <Detector D>
void churn_sequential() {
  RaceCollector races;
  RuleStats stats;
  Runtime<D> rt{D(&races, &stats)};
  typename Runtime<D>::MainScope scope(rt);
  Var<long, D> shared(rt, 0);
  for (int i = 0; i < kTotalThreads; ++i) {
    Thread<D> t(rt, [&] { shared.store(shared.load() + 1); });
    t.join();
  }
  // Join-ordered increments: every access ordered by fork/join edges.
  EXPECT_TRUE(races.empty()) << D::kName << ": "
                             << races.first()->str();
  EXPECT_EQ(shared.raw(), kTotalThreads);
  // main + one worker slot, reused kTotalThreads times.
  EXPECT_LE(rt.registry().slots_in_use(), Epoch::kMaxTid + 1u);
  EXPECT_LE(rt.registry().slots_in_use(), 2u);
  EXPECT_EQ(rt.registry().live_count(), 1u);
}

template <Detector D>
void churn_windowed() {
  RaceCollector races;
  RuleStats stats;
  Runtime<D> rt{D(&races, &stats)};
  typename Runtime<D>::MainScope scope(rt);
  Mutex<D> mu(rt);
  Var<long, D> shared(rt, 0);
  int spawned = 0;
  while (spawned < kTotalThreads) {
    std::vector<std::unique_ptr<Thread<D>>> wave;
    for (int i = 0; i < kWindow && spawned < kTotalThreads; ++i, ++spawned) {
      wave.push_back(std::make_unique<Thread<D>>(rt, [&] {
        Guard<D> g(mu);
        shared.store(shared.load() + 1);
      }));
    }
    for (auto& t : wave) t->join();
  }
  EXPECT_TRUE(races.empty()) << D::kName << ": "
                             << races.first()->str();
  EXPECT_EQ(shared.raw(), kTotalThreads);
  // The live population never exceeded main + kWindow, so neither may
  // the tid footprint - the hard cap first, then the tight one.
  EXPECT_LE(rt.registry().slots_in_use(), Epoch::kMaxTid + 1u);
  EXPECT_LE(rt.registry().slots_in_use(),
            static_cast<std::size_t>(kWindow) + 1u);
  EXPECT_EQ(rt.registry().live_count(), 1u);
}

TEST(TidChurn, SequentialForkJoinAcrossAllDetectors) {
  churn_sequential<VftV1>();
  churn_sequential<VftV15>();
  churn_sequential<VftV2>();
  churn_sequential<FtMutex>();
  churn_sequential<FtCas>();
  churn_sequential<Djit>();
}

TEST(TidChurn, WindowedForkJoinAcrossAllDetectors) {
  churn_windowed<VftV1>();
  churn_windowed<VftV15>();
  churn_windowed<VftV2>();
  churn_windowed<FtMutex>();
  churn_windowed<FtCas>();
  churn_windowed<Djit>();
}

}  // namespace
}  // namespace vft::rt
