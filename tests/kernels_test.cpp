// Kernel suite integration tests: every kernel must validate its own
// output and stay race-report-free under every detector, and the
// deterministic kernels must produce bit-identical checksums regardless of
// which tool observes them (instrumentation must not perturb the target).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "kernels/all.h"

namespace vft::kernels {
namespace {

// Kernels whose checksum is independent of thread scheduling.
bool deterministic(const std::string& name) {
  return name != "montecarlo" && name != "avrora" && name != "h2" &&
         name != "tomcat";  // pmd totals are order-independent
}

template <typename D>
void run_suite(std::map<std::string, double>* checksums) {
  for (const auto& e : kernel_table<D>()) {
    KernelConfig cfg;
    cfg.threads = 3;
    cfg.scale = 1;
    auto [result, races] = run_kernel<D>(e.fn, cfg);
    EXPECT_TRUE(result.valid) << D::kName << "/" << e.name;
    EXPECT_EQ(races, 0u) << D::kName << "/" << e.name;
    if (checksums != nullptr && deterministic(e.name)) {
      auto [it, inserted] = checksums->emplace(e.name, result.checksum);
      if (!inserted) {
        EXPECT_EQ(it->second, result.checksum)
            << D::kName << "/" << e.name << ": instrumentation changed the "
            << "target's result";
      }
    }
  }
}

TEST(Kernels, AllValidAndQuietUnderEveryTool) {
  std::map<std::string, double> checksums;
  run_suite<rt::NullTool>(&checksums);
  run_suite<VftV1>(&checksums);
  run_suite<VftV15>(&checksums);
  run_suite<VftV2>(&checksums);
  run_suite<FtMutex>(&checksums);
  run_suite<FtCas>(&checksums);
  run_suite<Djit>(&checksums);
}

TEST(Kernels, ThreadCountSweep) {
  for (const std::uint32_t threads : {1u, 2u, 5u}) {
    for (const auto& e : kernel_table<VftV2>()) {
      KernelConfig cfg;
      cfg.threads = threads;
      cfg.scale = 1;
      auto [result, races] = run_kernel<VftV2>(e.fn, cfg);
      EXPECT_TRUE(result.valid) << e.name << " threads=" << threads;
      EXPECT_EQ(races, 0u) << e.name << " threads=" << threads;
    }
  }
}

TEST(Kernels, SeedChangesDeterministicChecksum) {
  KernelConfig a, b;
  a.threads = b.threads = 2;
  a.seed = 1;
  b.seed = 2;
  const auto ra = run_kernel<rt::NullTool>(&crypt<rt::NullTool>, a);
  const auto rb = run_kernel<rt::NullTool>(&crypt<rt::NullTool>, b);
  EXPECT_NE(ra.first.checksum, rb.first.checksum);
}

TEST(Kernels, ValidateFlagSkipsNothingEssential) {
  // validate=false must not change the computation, only skip checking.
  KernelConfig with, without;
  with.threads = without.threads = 2;
  without.validate = false;
  const auto rw = run_kernel<rt::NullTool>(&sor<rt::NullTool>, with);
  const auto ro = run_kernel<rt::NullTool>(&sor<rt::NullTool>, without);
  EXPECT_EQ(rw.first.checksum, ro.first.checksum);
  EXPECT_TRUE(rw.first.valid);
  EXPECT_TRUE(ro.first.valid);
}

TEST(Kernels, TableCoversNineteenWorkloads) {
  EXPECT_EQ(kernel_table<rt::NullTool>().size(), 19u);
}

}  // namespace
}  // namespace vft::kernels
