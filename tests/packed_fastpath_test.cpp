// The packed-cell same-epoch fast path (vft/packed_cell.h and the
// PackedShadowSpace / wrapper packed modes built on it), checked four ways:
//
//   - PackedCell unit semantics: the decision tree, the one-way
//     ESCALATING -> ESCALATED protocol, bottom-epoch first touches;
//   - randomized differential replay: identical generated traces through
//     (a) the packed fast path + detector slow path and (b) the pure
//     Figure 2 Spec oracle, across all six detectors, comparing the first
//     race position and (for epoch detectors) the final {R, W} state
//     whether it still lives in the cell or spilled into the VarState;
//   - cross-backend parity: the same traces against real memory through
//     PackedShadowSpace, ShadowSpace, and ShadowTable must agree with each
//     other and with the oracle;
//   - deterministic schedules scripted in the schedule explorer's replay
//     format (sched::ScriptedOrder) and concurrent stress through
//     the production wrappers (rt::Var packed mode), including forced
//     spill/promotion interleavings: simultaneous escalation must spill
//     exactly once, ordered handoffs must stay race-free (and on the fast
//     path), and unsynchronized sharing must still race.
#include "vft/packed_cell.h"

#include <gtest/gtest.h>

#include <array>

#include "runtime/adaptive_array.h"
#include "runtime/coarse_array.h"
#include "runtime/instrument.h"
#include "runtime/shadow_table.h"
#include "sched/script.h"
#include "trace/generator.h"
#include "trace/replay.h"
#include "vft/detector.h"
#include "vft/spec.h"

namespace vft {
namespace {

using trace::GeneratorConfig;
using trace::Op;
using trace::OpKind;
using trace::Trace;

// --- PackedCell unit semantics ----------------------------------------------

TEST(PackedCell, FirstTouchesRideTheFastPath) {
  // The default cell is {bottom, bottom}; clock-0 epochs are ordered
  // before every thread (clocks start at 1), so first touches advance by
  // CAS instead of escalating.
  PackedCell cell;
  ThreadState t0(0);
  EXPECT_EQ(cell.fast_read(t0), PackedCell::Fast::kAdvanced);
  EXPECT_EQ(PackedCell::unpack_r(cell.bits()), t0.epoch());
  EXPECT_EQ(cell.fast_read(t0), PackedCell::Fast::kSameEpoch);
  EXPECT_EQ(cell.fast_write(t0), PackedCell::Fast::kAdvanced);
  EXPECT_EQ(cell.fast_write(t0), PackedCell::Fast::kSameEpoch);
  EXPECT_FALSE(cell.escalated());
}

TEST(PackedCell, OrderedCrossThreadAdvancesStayInline) {
  // t1's accesses are ordered after t0's (simulated release/acquire), so
  // the exclusive rules advance the cell without any detector involvement.
  PackedCell cell;
  ThreadState t0(0), t1(1);
  ASSERT_EQ(cell.fast_write(t0), PackedCell::Fast::kAdvanced);
  t1.join(t0.V);  // t1 now knows t0's epoch
  EXPECT_EQ(cell.fast_write(t1), PackedCell::Fast::kAdvanced);
  EXPECT_EQ(PackedCell::unpack_w(cell.bits()), t1.epoch());
  EXPECT_EQ(cell.fast_read(t1), PackedCell::Fast::kAdvanced);
  EXPECT_FALSE(cell.escalated());
}

TEST(PackedCell, UnorderedAccessRefusesAndEscalatesOnce) {
  PackedCell cell;
  ThreadState t0(0), t1(1);
  ASSERT_EQ(cell.fast_write(t0), PackedCell::Fast::kAdvanced);
  // t1 never saw t0's write: the fast path must refuse both directions.
  EXPECT_EQ(cell.fast_read(t1), PackedCell::Fast::kSlow);
  EXPECT_EQ(cell.fast_write(t1), PackedCell::Fast::kSlow);

  auto rw = cell.begin_escalate();
  ASSERT_TRUE(rw.has_value());  // we won the escalation
  EXPECT_EQ(rw->second, t0.epoch());
  cell.finish_escalate();
  EXPECT_TRUE(cell.escalated());
  // Terminal: later escalation attempts find it done, fast paths refuse.
  EXPECT_FALSE(cell.begin_escalate().has_value());
  EXPECT_EQ(cell.fast_read(t0), PackedCell::Fast::kSlow);
  EXPECT_EQ(cell.fast_write(t0), PackedCell::Fast::kSlow);
}

TEST(PackedCell, EscalateCellInjectsSnapshotIntoSpillTarget) {
  PackedCell cell;
  ThreadState t0(0);
  ASSERT_EQ(cell.fast_write(t0), PackedCell::Fast::kAdvanced);
  ASSERT_EQ(cell.fast_read(t0), PackedCell::Fast::kAdvanced);
  VftV1::VarState vs;
  bool won = false;
  auto target = [&vs]() -> VftV1::VarState& { return vs; };
  escalate_cell(cell, target, target, &won);
  EXPECT_TRUE(won);
  EXPECT_EQ(vs.R, t0.epoch());
  EXPECT_EQ(vs.W, t0.epoch());
  // Second resolution takes the get() path.
  won = true;
  escalate_cell(cell, target, target, &won);
  EXPECT_FALSE(won);
}

// --- Randomized differential vs the Spec oracle -----------------------------

/// Trace-level shadow store with a packed cell fronting every variable's
/// (eagerly allocated) VarState - the rt::Var packed-mode shape, driven by
/// hand-managed ThreadStates so generated traces exercise the exact
/// production fast-path/spill code.
template <typename D>
class PackedStore {
 public:
  bool apply(D& d, const Op& op) {
    if (op.kind == OpKind::kRead || op.kind == OpKind::kWrite) {
      Entry& e = entry(op.target);
      auto target = [&e]() -> typename D::VarState& { return *e.vs; };
      ThreadState& st = base_.thread(op.t);
      return op.kind == OpKind::kRead
                 ? packed_read(d, st, e.cell, target, target)
                 : packed_write(d, st, e.cell, target, target);
    }
    return trace::apply(d, base_, op);
  }

  PackedCell& cell(VarId x) { return entry(x).cell; }
  typename D::VarState& var(VarId x) { return *entry(x).vs; }

 private:
  struct Entry {
    PackedCell cell;
    std::unique_ptr<typename D::VarState> vs;
  };

  Entry& entry(VarId x) {
    auto it = vars_.find(x);
    if (it == vars_.end()) {
      auto e = std::make_unique<Entry>();
      e->vs = std::make_unique<typename D::VarState>();
      e->vs->id = x;
      it = vars_.emplace(x, std::move(e)).first;
    }
    return *it->second;
  }

  trace::ShadowStore<D> base_;  // threads, locks, volatiles
  std::unordered_map<VarId, std::unique_ptr<Entry>> vars_;
};

/// Final-state agreement: the epoch-mode {R, W} lives either in the cell
/// (never escalated) or in the spilled VarState; both must equal the
/// oracle's. A SHARED oracle state implies the cell escalated.
template <typename D>
void expect_packed_var_matches_spec(PackedStore<D>& store, VarId x,
                                    const Spec::VarState& s) {
  PackedCell& cell = store.cell(x);
  if (!cell.escalated()) {
    ASSERT_FALSE(s.R.is_shared()) << "SHARED state requires escalation";
    EXPECT_EQ(PackedCell::unpack_r(cell.bits()), s.R);
    EXPECT_EQ(PackedCell::unpack_w(cell.bits()), s.W);
  } else if constexpr (ProbeableVarState<typename D::VarState>) {
    typename D::VarState& vs = store.var(x);
    EXPECT_EQ(probe_r(vs), s.R);
    EXPECT_EQ(probe_w(vs), s.W);
  }
}

template <typename D>
void run_packed_equivalence(RuleSet rules, bool check_state) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    for (const double disciplined : {1.0, 0.85, 0.5}) {
      RaceCollector rc;
      RuleStats stats;
      D d(&rc, &stats);
      GeneratorConfig cfg;
      cfg.initial_threads = 3;
      cfg.max_threads = 3;
      cfg.vars = 6;
      cfg.ops = 180;
      cfg.disciplined_fraction = disciplined;
      cfg.seed = seed * 131 + static_cast<std::uint64_t>(disciplined * 10);
      const Trace t = trace::generate(cfg);

      Spec spec(rules);
      const trace::SpecReplayResult sr = trace::replay_spec(t, spec);

      PackedStore<D> store;
      std::optional<std::size_t> first_race;
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (!store.apply(d, t[i]) && !first_race) first_race = i;
        // Prefix convention (Section 7 fail-over): the spec halts at its
        // first error, the implementation keeps going.
        if (sr.error_index && i == *sr.error_index) break;
      }

      ASSERT_EQ(first_race, sr.error_index)
          << D::kName << " seed " << seed << " disc " << disciplined << "\n"
          << trace::to_string(t);
      if (!sr.error_index) {
        EXPECT_TRUE(rc.empty());
        if (check_state) {
          for (const Op& op : t) {
            if (op.kind == OpKind::kRead || op.kind == OpKind::kWrite) {
              expect_packed_var_matches_spec(store, op.target,
                                             spec.var(op.target));
            }
          }
        }
      } else {
        EXPECT_GE(rc.count(), 1u);
      }
      // Accounting invariant: every access is either a fast hit or a miss.
      std::uint64_t accesses = 0;
      for (const Op& op : t) {
        if (op.kind == OpKind::kRead || op.kind == OpKind::kWrite) ++accesses;
      }
      if (!sr.error_index) {
        EXPECT_EQ(stats.count(Rule::kFastReadHit) +
                      stats.count(Rule::kFastWriteHit) +
                      stats.count(Rule::kFastMiss),
                  accesses);
        EXPECT_EQ(stats.total_accesses(), accesses);
      }
    }
  }
}

TEST(PackedDifferential, VftV1MatchesSpec) {
  run_packed_equivalence<VftV1>(RuleSet::kVerifiedFT, true);
}
TEST(PackedDifferential, VftV15MatchesSpec) {
  run_packed_equivalence<VftV15>(RuleSet::kVerifiedFT, true);
}
TEST(PackedDifferential, VftV2MatchesSpec) {
  run_packed_equivalence<VftV2>(RuleSet::kVerifiedFT, true);
}
TEST(PackedDifferential, FtMutexMatchesOriginalSpec) {
  run_packed_equivalence<FtMutex>(RuleSet::kOriginalFastTrack, true);
}
TEST(PackedDifferential, FtCasMatchesOriginalSpec) {
  run_packed_equivalence<FtCas>(RuleSet::kOriginalFastTrack, true);
}
TEST(PackedDifferential, DjitFindsSameFirstRace) {
  run_packed_equivalence<Djit>(RuleSet::kVerifiedFT, false);
}

// --- Cross-backend parity on real memory ------------------------------------

/// Replay a trace routing variable accesses through `access` (a backend
/// adapter over real addresses) and everything else through a ShadowStore.
template <typename D, typename AccessFn>
std::optional<std::size_t> replay_against_backend(
    const Trace& t, D& d, AccessFn&& access,
    std::optional<std::size_t> stop) {
  trace::ShadowStore<D> store;
  std::optional<std::size_t> first_race;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Op& op = t[i];
    bool ok = true;
    if (op.kind == OpKind::kRead || op.kind == OpKind::kWrite) {
      ok = access(d, store.thread(op.t), op);
    } else {
      trace::apply(d, store, op);
    }
    if (!ok && !first_race) first_race = i;
    if (stop && i == *stop) break;
  }
  return first_race;
}

template <typename D>
void run_backend_parity(RuleSet rules) {
  constexpr std::size_t kVars = 6;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    GeneratorConfig cfg;
    cfg.initial_threads = 3;
    cfg.max_threads = 3;
    cfg.vars = kVars;
    cfg.ops = 160;
    cfg.disciplined_fraction = seed % 2 == 0 ? 0.85 : 0.6;
    cfg.seed = seed * 977;
    const Trace t = trace::generate(cfg);

    Spec spec(rules);
    const trace::SpecReplayResult sr = trace::replay_spec(t, spec);

    // One 8-byte word of real memory per variable, so word granularity
    // cannot alias distinct VarIds.
    alignas(8) std::array<std::uint64_t, kVars> mem{};

    RaceCollector rc1, rc2, rc3;
    D d1(&rc1), d2(&rc2), d3(&rc3);
    rt::PackedShadowSpace<D> packed;
    rt::ShadowSpace<D> space;
    rt::ShadowTable<D> table;

    const auto fr_packed = replay_against_backend(
        t, d1,
        [&](D& d, ThreadState& st, const Op& op) {
          const void* a = &mem[op.target];
          return op.kind == OpKind::kRead ? packed.read(d, st, a)
                                          : packed.write(d, st, a);
        },
        sr.error_index);
    const auto fr_space = replay_against_backend(
        t, d2,
        [&](D& d, ThreadState& st, const Op& op) {
          auto& vs = space.of(&mem[op.target]);
          return op.kind == OpKind::kRead ? d.read(st, vs) : d.write(st, vs);
        },
        sr.error_index);
    const auto fr_table = replay_against_backend(
        t, d3,
        [&](D& d, ThreadState& st, const Op& op) {
          auto& vs = table.of(&mem[op.target]);
          return op.kind == OpKind::kRead ? d.read(st, vs) : d.write(st, vs);
        },
        sr.error_index);

    EXPECT_EQ(fr_packed, sr.error_index)
        << D::kName << " packed, seed " << seed << "\n" << trace::to_string(t);
    EXPECT_EQ(fr_space, sr.error_index) << D::kName << " space, seed " << seed;
    EXPECT_EQ(fr_table, sr.error_index) << D::kName << " table, seed " << seed;
  }
}

TEST(PackedBackendParity, VftV2) { run_backend_parity<VftV2>(RuleSet::kVerifiedFT); }
TEST(PackedBackendParity, VftV1) { run_backend_parity<VftV1>(RuleSet::kVerifiedFT); }
TEST(PackedBackendParity, FtCas) {
  run_backend_parity<FtCas>(RuleSet::kOriginalFastTrack);
}
TEST(PackedBackendParity, Djit) { run_backend_parity<Djit>(RuleSet::kVerifiedFT); }

// --- Deterministic spill/promotion schedules through the wrappers -----------

template <typename D>
class PackedFastPath : public ::testing::Test {};

using AllDetectors =
    ::testing::Types<VftV1, VftV15, VftV2, FtMutex, FtCas, Djit>;
TYPED_TEST_SUITE(PackedFastPath, AllDetectors);

TYPED_TEST(PackedFastPath, ReadSharePromotionSpillsWithSpecParity) {
  // main writes x; two forked readers share it. The first read advances
  // the cell inline; the second is unordered with it and must escalate
  // ([Read Share] promotion in the detector). Race-free, one spill.
  RaceCollector rc;
  RuleStats stats;
  rt::Runtime<TypeParam> R{TypeParam(&rc, &stats)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  rt::Var<int, TypeParam> x(R, 0, 0, /*packed=*/true);
  sched::ScriptedOrder order({0, 1, 1});

  x.store(7);
  rt::Thread<TypeParam> t1(R, [&] {
    order.step(0, [&] { EXPECT_EQ(x.load(), 7); });
  });
  rt::Thread<TypeParam> t2(R, [&] {
    // unordered with t1's read: escalates
    order.step(1, [&] { EXPECT_EQ(x.load(), 7); });
    // post-spill: detector [Read Shared Same Epoch]
    order.step(1, [&] { EXPECT_EQ(x.load(), 7); });
  });
  t1.join();
  t2.join();

  Spec oracle;
  oracle.on_write(0, 1);
  oracle.on_fork(0, 1);
  oracle.on_fork(0, 2);
  bool error = false;
  error |= oracle.on_read(1, 1).error;
  error |= oracle.on_read(2, 1).error;
  error |= oracle.on_read(2, 1).error;
  EXPECT_FALSE(error);
  EXPECT_EQ(rc.count(), 0u) << rc.first()->str();
  EXPECT_TRUE(x.cell().escalated());
  EXPECT_EQ(stats.count(Rule::kFastSpill), 1u);
}

TYPED_TEST(PackedFastPath, LockedHandoffStaysOnFastPath) {
  // Lock-ordered write handoffs keep {R, W} ordered before each accessor,
  // so the exclusive rules cover them inline: no spill, no race - and the
  // oracle agrees the schedule is race-free.
  RaceCollector rc;
  RuleStats stats;
  rt::Runtime<TypeParam> R{TypeParam(&rc, &stats)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  rt::Var<int, TypeParam> x(R, 0, 0, /*packed=*/true);
  rt::Mutex<TypeParam> m(R);
  sched::ScriptedOrder order({0, 1});

  rt::Thread<TypeParam> t1(R, [&] {
    order.step(0, [&] {
      rt::Guard<TypeParam> g(m);
      x.store(1);
      x.store(2);  // [Write Same Epoch] hit
    });
  });
  rt::Thread<TypeParam> t2(R, [&] {
    order.step(1, [&] {
      rt::Guard<TypeParam> g(m);
      EXPECT_EQ(x.load(), 2);  // ordered via m: [Read Exclusive] inline
      x.store(3);              // ordered: [Write Exclusive] inline
    });
  });
  t1.join();
  t2.join();

  Spec oracle;
  oracle.on_fork(0, 1);
  oracle.on_fork(0, 2);
  bool error = false;
  oracle.on_acquire(1, 1);
  error |= oracle.on_write(1, 1).error;
  error |= oracle.on_write(1, 1).error;
  oracle.on_release(1, 1);
  oracle.on_acquire(2, 1);
  error |= oracle.on_read(2, 1).error;
  error |= oracle.on_write(2, 1).error;
  oracle.on_release(2, 1);
  EXPECT_FALSE(error);
  EXPECT_EQ(rc.count(), 0u) << rc.first()->str();
  EXPECT_FALSE(x.cell().escalated());
  EXPECT_EQ(stats.count(Rule::kFastSpill), 0u);
  EXPECT_EQ(stats.count(Rule::kFastMiss), 0u);
}

TYPED_TEST(PackedFastPath, RacingWriteSpillsAndReports) {
  // t2's write is unordered with t1's: the cell refuses, spills, and the
  // detector (not the fast path) reports the race - at the same operation
  // the oracle errors on.
  RaceCollector rc;
  RuleStats stats;
  rt::Runtime<TypeParam> R{TypeParam(&rc, &stats)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  rt::Var<int, TypeParam> x(R, 0, 0, /*packed=*/true);
  sched::ScriptedOrder order({0, 1});  // scripted: invisible to analysis

  rt::Thread<TypeParam> t1(R, [&] {
    order.step(0, [&] { x.store(1); });
  });
  rt::Thread<TypeParam> t2(R, [&] {
    order.step(1, [&] { x.store(2); });  // races with t1's write
  });
  t1.join();
  t2.join();

  Spec oracle;
  oracle.on_fork(0, 1);
  oracle.on_fork(0, 2);
  bool error = false;
  error |= oracle.on_write(1, 1).error;
  error |= oracle.on_write(2, 1).error;
  EXPECT_TRUE(error);
  EXPECT_GE(rc.count(), 1u);
  EXPECT_TRUE(x.cell().escalated());
  EXPECT_EQ(stats.count(Rule::kFastSpill), 1u);
}

// --- Concurrent stress ------------------------------------------------------

TYPED_TEST(PackedFastPath, SimultaneousEscalationSpillsExactlyOnce) {
  // All workers hit one fresh cell's escalation window together; exactly
  // one may win the spill, every access must still be checked, and the
  // ordered publication must stay race-free.
  constexpr int kIters = 20;
  for (int iter = 0; iter < kIters; ++iter) {
    RaceCollector rc;
    RuleStats stats;
    rt::Runtime<TypeParam> R{TypeParam(&rc, &stats)};
    typename rt::Runtime<TypeParam>::MainScope scope(R);
    rt::Var<int, TypeParam> x(R, 0, 0, /*packed=*/true);
    x.store(5);
    rt::parallel_for_threads(R, 4, [&](std::uint32_t) {
      for (int i = 0; i < 16; ++i) EXPECT_EQ(x.load(), 5);
    });
    EXPECT_EQ(rc.count(), 0u) << rc.first()->str();
    EXPECT_LE(stats.count(Rule::kFastSpill), 1u);
    // 4 unordered readers cannot all stay in epoch mode.
    EXPECT_TRUE(x.cell().escalated());
    EXPECT_EQ(stats.count(Rule::kFastSpill), 1u);
  }
}

TYPED_TEST(PackedFastPath, UnsynchronizedWritersStillRace) {
  // The fast path must not swallow genuine races under real concurrency:
  // two unordered writers always produce at least one report, whichever
  // interleaving the hardware picks.
  RaceCollector rc;
  rt::Runtime<TypeParam> R{TypeParam(&rc)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  rt::Var<int, TypeParam> x(R, 0, 0, /*packed=*/true);
  rt::parallel_for_threads(R, 2, [&](std::uint32_t w) {
    for (int i = 0; i < 50; ++i) x.store(static_cast<int>(w));
  });
  EXPECT_GE(rc.count(), 1u);
  EXPECT_TRUE(x.cell().escalated());
}

TYPED_TEST(PackedFastPath, LockOrderedHammerNoFalsePositives) {
  // Many threads hammer one packed variable under a lock: every handoff
  // is ordered, so any report is a fast-path unsoundness.
  RaceCollector rc;
  rt::Runtime<TypeParam> R{TypeParam(&rc)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  rt::Var<int, TypeParam> x(R, 0, 0, /*packed=*/true);
  rt::Mutex<TypeParam> m(R);
  rt::parallel_for_threads(R, 4, [&](std::uint32_t) {
    for (int i = 0; i < 200; ++i) {
      rt::Guard<TypeParam> g(m);
      x.store(x.load() + 1);
    }
  });
  EXPECT_EQ(rc.count(), 0u) << rc.first()->str();
  EXPECT_EQ(x.raw(), 800);
}

// --- Wrapper / raw-pointer agreement on the packed space --------------------

TYPED_TEST(PackedFastPath, ArrayAndRawInstrumentationShareCells) {
  // A packed-carved rt::Array and instrumented_read/write on &data()[i]
  // must resolve to the same cells: a wrapper access followed by a raw
  // access of the same element in the same epoch is a same-epoch hit.
  RaceCollector rc;
  RuleStats stats;
  rt::Runtime<TypeParam> R{TypeParam(&rc, &stats)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  auto& pspace = R.packed_space();
  rt::Array<std::uint64_t, TypeParam> a(R, pspace, 64, 3);

  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.load(i), 3u);
  const std::uint64_t misses_before = stats.count(Rule::kFastMiss);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(rt::instrumented_read(R, pspace, &a.data()[i]));
  }
  // Same epoch, same cells: every raw read is a fast hit.
  EXPECT_EQ(stats.count(Rule::kFastMiss), misses_before);
  EXPECT_EQ(rc.count(), 0u);
  EXPECT_EQ(pspace.spilled(), 0u);

  // Force-escalating shadow() spills with the word's address id and the
  // exact cell snapshot.
  auto& vs = a.shadow(0);
  EXPECT_EQ(vs.id, reinterpret_cast<std::uint64_t>(&a.data()[0]));
  EXPECT_EQ(pspace.spilled(), 1u);
  if constexpr (ProbeableVarState<typename TypeParam::VarState>) {
    EXPECT_EQ(probe_r(vs), R.self().epoch());
  }
  // Range entry points keep working over a mix of live and spilled cells.
  EXPECT_TRUE(rt::instrumented_range_read(R, pspace, a.data(),
                                          a.size() * sizeof(std::uint64_t)));
  EXPECT_EQ(rc.count(), 0u);
}

// --- CoarseArray / AdaptiveArray packed modes -------------------------------

TYPED_TEST(PackedFastPath, CoarseArrayPackedKeepsGranulePartitionsQuiet) {
  // Granule-aligned thread partitions with an ordered handoff: every
  // granule's cell sees only ordered accesses, so the whole run stays on
  // the fast path with zero reports.
  RaceCollector rc;
  RuleStats stats;
  rt::Runtime<TypeParam> R{TypeParam(&rc, &stats)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  rt::CoarseArray<int, TypeParam> a(R, 128, 32, 0, /*packed=*/true);
  rt::parallel_for_threads(R, 4, [&](std::uint32_t w) {
    for (std::size_t i = w * 32; i < (w + 1) * 32; ++i) {
      a.store(i, static_cast<int>(i));
      EXPECT_EQ(a.load(i), static_cast<int>(i));
    }
  });
  EXPECT_EQ(rc.count(), 0u) << rc.first()->str();
  EXPECT_EQ(stats.count(Rule::kFastSpill), 0u);
  EXPECT_GT(stats.count(Rule::kFastWriteHit), 0u);
}

TYPED_TEST(PackedFastPath, CoarseArrayPackedStillFalseAlarmsAcrossGranule) {
  // The documented coarse-shadow imprecision must survive the packed
  // front: two threads on different elements of one granule still report.
  RaceCollector rc;
  rt::Runtime<TypeParam> R{TypeParam(&rc)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  rt::CoarseArray<int, TypeParam> a(R, 64, 64, 0, /*packed=*/true);
  sched::ScriptedOrder order({0, 1});
  rt::Thread<TypeParam> t1(R, [&] {
    order.step(0, [&] { a.store(1, 1); });
  });
  rt::Thread<TypeParam> t2(R, [&] {
    // distinct element, same granule: merged history
    order.step(1, [&] { a.store(60, 1); });
  });
  t1.join();
  t2.join();
  EXPECT_GE(rc.count(), 1u);
}

TEST(PackedAdaptiveArray, OwnerStaysInlineAndSplitSnapshotsFromCell) {
  // The owner's coarse-path accesses run against the granule cell; the
  // second thread's touch splits with the cell's exact {R, W} snapshot,
  // so an ordered handoff stays race-free and precision is per-element
  // afterwards.
  RaceCollector rc;
  RuleStats stats;
  rt::Runtime<VftV2> R{VftV2(&rc, &stats)};
  rt::Runtime<VftV2>::MainScope scope(R);
  rt::AdaptiveArray<int, VftV2> a(R, 64, 16, 0, /*packed=*/true);
  for (std::size_t i = 0; i < a.size(); ++i) a.store(i, 1);
  EXPECT_EQ(a.split_count(), 0u);
  EXPECT_GT(stats.count(Rule::kFastWriteHit), 0u);

  rt::Thread<VftV2> t1(R, [&] {
    a.store(5, 2);  // ordered via fork: splits granule 0, no report
    a.store(5, 3);
  });
  t1.join();
  EXPECT_EQ(a.split_count(), 1u);
  EXPECT_EQ(rc.count(), 0u) << rc.first()->str();
  EXPECT_EQ(a.raw(5), 3);
}

TEST(PackedAdaptiveArray, RacyTouchAfterSplitStillReports) {
  RaceCollector rc;
  rt::Runtime<VftV2> R{VftV2(&rc)};
  rt::Runtime<VftV2>::MainScope scope(R);
  rt::AdaptiveArray<int, VftV2> a(R, 32, 32, 0, /*packed=*/true);
  sched::ScriptedOrder order({0, 1});
  rt::Thread<VftV2> t1(R, [&] {
    // claims the granule, packed coarse path
    order.step(0, [&] { a.store(3, 1); });
  });
  rt::Thread<VftV2> t2(R, [&] {
    // unordered second thread: split, then race on elem 3
    order.step(1, [&] { a.store(3, 2); });
  });
  t1.join();
  t2.join();
  EXPECT_GE(rc.count(), 1u);
}

TEST(PackedShadowSpaceStats, CountsPagesAndSpills) {
  rt::PackedShadowSpace<VftV2> space;
  ThreadState t0(0);
  VftV2 d(nullptr);
  std::vector<std::uint64_t> mem(1024, 0);
  for (auto& w : mem) space.write(d, t0, &w);
  const rt::ShadowSpaceStats s = space.stats();
  EXPECT_GE(s.pages, 2u);  // 8 KiB of target words
  EXPECT_EQ(s.spilled, 0u);
  space.of(&mem[0]);  // force one spill
  EXPECT_EQ(space.stats().spilled, 1u);
  EXPECT_EQ(space.of(&mem[0]).id,
            rt::ShadowGeometry::kGranularity *
                (reinterpret_cast<std::uintptr_t>(&mem[0]) /
                 rt::ShadowGeometry::kGranularity));
}

}  // namespace
}  // namespace vft
