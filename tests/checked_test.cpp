// Checked<> invariant decorator: transparent on correct detectors across
// big random replay sweeps (racy and race-free), and actually able to
// catch invariant violations (validated against a deliberately broken
// detector).
#include <gtest/gtest.h>

#include "trace/generator.h"
#include "trace/replay.h"
#include "vft/checked.h"
#include "vft/detector.h"

namespace vft {
namespace {

static_assert(Detector<Checked<VftV1>>);
static_assert(Detector<Checked<VftV2>>);
static_assert(Detector<Checked<FtCas>>);

template <typename D>
void sweep(bool absorbing, RuleSet rules_for_ref) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    for (const double disciplined : {1.0, 0.5}) {
      trace::GeneratorConfig cfg;
      cfg.initial_threads = 3;
      cfg.max_threads = 2;
      cfg.vars = 6;
      cfg.ops = 150;
      cfg.disciplined_fraction = disciplined;
      cfg.seed = seed;
      const trace::Trace t = trace::generate(cfg);

      RaceCollector rc;
      Checked<D> checked(D(&rc), absorbing);
      const trace::ReplayResult run = trace::replay(t, checked);

      // The decorator must be observationally transparent.
      RaceCollector rc_plain;
      D plain(&rc_plain);
      const trace::ReplayResult ref = trace::replay(t, plain);
      ASSERT_EQ(run.first_race, ref.first_race)
          << D::kName << " seed " << seed;
      ASSERT_EQ(rc.count(), rc_plain.count());
      (void)rules_for_ref;
    }
  }
}

TEST(Checked, TransparentOverVftV1) { sweep<VftV1>(true, RuleSet::kVerifiedFT); }
TEST(Checked, TransparentOverVftV15) { sweep<VftV15>(true, RuleSet::kVerifiedFT); }
TEST(Checked, TransparentOverVftV2) { sweep<VftV2>(true, RuleSet::kVerifiedFT); }
TEST(Checked, TransparentOverFtMutexOriginalRules) {
  // Original rules reset R on [Write Shared]: absorption off.
  sweep<FtMutex>(false, RuleSet::kOriginalFastTrack);
}
TEST(Checked, TransparentOverFtCasOriginalRules) {
  sweep<FtCas>(false, RuleSet::kOriginalFastTrack);
}

// A deliberately broken detector: its write handler forgets to check the
// read history before an exclusive write AND stomps W with a stale epoch.
// Checked must abort on the W invariant.
class BrokenDetector : public VftV1 {
 public:
  using VftV1::VftV1;

  bool write(ThreadState& st, VftV1::VarState& sx) {
    std::scoped_lock lk(sx.mu);
    sx.W = st.epoch().inc();  // bogus: an epoch from the future
    return true;
  }
};

TEST(Checked, CatchesBrokenWriteInvariant) {
  RaceCollector rc;
  Checked<BrokenDetector> checked{BrokenDetector(&rc)};
  ThreadState t0(0);
  BrokenDetector::VarState x;
  // The stored W is neither the previous W (bottom) nor E_t: caught.
  EXPECT_DEATH(checked.write(t0, x), "VFT_CHECK");
}

// The absorption check must fire if SHARED mode is (incorrectly) dropped
// while absorbing mode is on - using FT-Mutex's original rules, whose
// [Write Shared] reset violates absorption by design.
TEST(Checked, AbsorptionViolationCaughtOnOriginalRules) {
  RaceCollector rc;
  Checked<FtMutex> checked{FtMutex(&rc), /*shared_is_absorbing=*/true};
  ThreadState a(0), b(1), c(2);
  FtMutex::VarState x;
  ASSERT_TRUE(checked.read(a, x));
  ASSERT_TRUE(checked.read(b, x));  // -> SHARED
  c.join(a.V);
  c.join(b.V);
  EXPECT_DEATH(checked.write(c, x), "VFT_CHECK");  // reset drops SHARED
}

}  // namespace
}  // namespace vft
