// End-to-end detection tests: small multithreaded target programs with
// planted races (one per race kind) and their repaired race-free twins,
// run against every detector in the family through the real runtime.
#include <gtest/gtest.h>

#include "kernels/all.h"
#include "runtime/instrument.h"

namespace vft {
namespace {

template <typename D, typename Target>
std::size_t races_in(Target target) {
  RaceCollector rc;
  rt::Runtime<D> R{D(&rc)};
  typename rt::Runtime<D>::MainScope scope(R);
  target(R);
  return rc.count();
}

// The scenarios, parameterized over detector type via typed tests.
template <typename D>
class Detection : public ::testing::Test {};

using AllDetectors = ::testing::Types<VftV1, VftV15, VftV2, FtMutex, FtCas, Djit>;
TYPED_TEST_SUITE(Detection, AllDetectors);

TYPED_TEST(Detection, UnsyncWritesRace) {
  const std::size_t n = races_in<TypeParam>([](auto& R) {
    rt::Var<int, TypeParam> v(R, 0);
    rt::parallel_for_threads(R, 2, [&](std::uint32_t w) {
      v.store(static_cast<int>(w));
    });
  });
  EXPECT_GE(n, 1u);
}

TYPED_TEST(Detection, LockedWritesDoNotRace) {
  const std::size_t n = races_in<TypeParam>([](auto& R) {
    rt::Var<int, TypeParam> v(R, 0);
    rt::Mutex<TypeParam> m(R);
    rt::parallel_for_threads(R, 4, [&](std::uint32_t w) {
      rt::Guard<TypeParam> g(m);
      v.store(static_cast<int>(w));
    });
  });
  EXPECT_EQ(n, 0u);
}

TYPED_TEST(Detection, WriteThenUnsyncReadRaces) {
  const std::size_t n = races_in<TypeParam>([](auto& R) {
    rt::Var<int, TypeParam> v(R, 0);
    rt::Mutex<TypeParam> m(R);
    rt::Thread<TypeParam> writer(R, [&] {
      rt::Guard<TypeParam> g(m);
      v.store(1);
    });
    rt::Thread<TypeParam> reader(R, [&] {
      (void)v.load();  // no lock: races with the writer
    });
    writer.join();
    reader.join();
  });
  EXPECT_GE(n, 1u);
}

TYPED_TEST(Detection, ReadThenUnsyncWriteRaces) {
  const std::size_t n = races_in<TypeParam>([](auto& R) {
    rt::Var<int, TypeParam> v(R, 0);
    rt::Thread<TypeParam> reader(R, [&] { (void)v.load(); });
    rt::Thread<TypeParam> writer(R, [&] { v.store(1); });
    reader.join();
    writer.join();
  });
  EXPECT_GE(n, 1u);
}

TYPED_TEST(Detection, SharedReadersThenUnsyncWriteRaces) {
  const std::size_t n = races_in<TypeParam>([](auto& R) {
    rt::Var<int, TypeParam> v(R, 0);
    // Two readers force SHARED mode...
    rt::parallel_for_threads(R, 2, [&](std::uint32_t) { (void)v.load(); });
    // ...then a writer concurrent with a third reader epoch.
    rt::Thread<TypeParam> reader(R, [&] { (void)v.load(); });
    rt::Thread<TypeParam> writer(R, [&] { v.store(1); });
    reader.join();
    writer.join();
  });
  EXPECT_GE(n, 1u);
}

TYPED_TEST(Detection, ReadSharedRaceFreePatternStaysQuiet) {
  const std::size_t n = races_in<TypeParam>([](auto& R) {
    rt::Array<int, TypeParam> table(R, 16, 3);
    rt::parallel_for_threads(R, 4, [&](std::uint32_t) {
      int acc = 0;
      for (int rep = 0; rep < 50; ++rep) {
        for (std::size_t i = 0; i < table.size(); ++i) acc += table.load(i);
      }
      EXPECT_EQ(acc, 3 * 16 * 50);
    });
  });
  EXPECT_EQ(n, 0u);
}

TYPED_TEST(Detection, FailOverReportsOnceNotPerAccess) {
  // Fail-over semantics: exactly one report for one racing pair, and the
  // racing thread's *subsequent* same-epoch accesses stay quiet because
  // the state was repaired after the report.
  const std::size_t n = races_in<TypeParam>([](auto& R) {
    rt::Var<int, TypeParam> v(R, 0);
    rt::Thread<TypeParam> t1(R, [&] { v.store(1); });
    rt::Thread<TypeParam> t2(R, [&] {
      v.store(2);                                // races with t1's write
      for (int i = 0; i < 100; ++i) v.store(i);  // same epoch: no reports
    });
    t1.join();
    t2.join();
  });
  // One report for the racing pair plus at most one more if t1's single
  // store interleaved into t2's loop - never one per access.
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 2u);
}

// Kernel-level fault injection (crypt plants one unsynchronized pattern).
TYPED_TEST(Detection, KernelFaultInjectionIsCaught) {
  kernels::KernelConfig cfg;
  cfg.threads = 2;
  cfg.scale = 1;
  cfg.inject_race = true;
  auto [result, races] =
      kernels::run_kernel<TypeParam>(&kernels::crypt<TypeParam>, cfg);
  EXPECT_GE(races, 1u);
}

TYPED_TEST(Detection, KernelWithoutInjectionIsQuiet) {
  kernels::KernelConfig cfg;
  cfg.threads = 2;
  cfg.scale = 1;
  auto [result, races] =
      kernels::run_kernel<TypeParam>(&kernels::crypt<TypeParam>, cfg);
  EXPECT_TRUE(result.valid);
  EXPECT_EQ(races, 0u);
}

}  // namespace
}  // namespace vft
