// Happens-before oracle: hand-built racy and race-free traces, plus a
// cross-check property test between the two independent implementations
// (vector-clock timestamping vs explicit transitive closure).
#include "trace/hb_oracle.h"

#include <gtest/gtest.h>

#include "trace/feasibility.h"
#include "trace/generator.h"

namespace vft::trace {
namespace {

void expect_both(const Trace& t, bool race_free) {
  ASSERT_TRUE(is_feasible(t)) << to_string(t);
  EXPECT_EQ(analyze(t).race_free(), race_free) << to_string(t);
  EXPECT_EQ(analyze_closure(t).race_free(), race_free) << to_string(t);
}

TEST(HbOracle, EmptyAndSingleAccessAreRaceFree) {
  expect_both({}, true);
  expect_both({wr(0, 0)}, true);
}

TEST(HbOracle, UnsynchronizedWritesRace) {
  expect_both({wr(0, 0), wr(1, 0)}, false);
}

TEST(HbOracle, UnsynchronizedWriteReadRaces) {
  expect_both({wr(0, 0), rd(1, 0)}, false);
  expect_both({rd(0, 0), wr(1, 0)}, false);
}

TEST(HbOracle, ConcurrentReadsDoNotRace) {
  expect_both({rd(0, 0), rd(1, 0), rd(2, 0)}, true);
}

TEST(HbOracle, LockOrdersCriticalSections) {
  expect_both({acq(0, 0), wr(0, 5), rel(0, 0), acq(1, 0), wr(1, 5), rel(1, 0)},
              true);
}

TEST(HbOracle, LockOnDifferentLocksDoesNotOrder) {
  expect_both({acq(0, 0), wr(0, 5), rel(0, 0), acq(1, 1), wr(1, 5), rel(1, 1)},
              false);
}

TEST(HbOracle, LockChainOrdersTransitively) {
  // A -> (m) -> B -> (k) -> C: A's write ordered before C's via two locks.
  expect_both({acq(0, 0), wr(0, 9), rel(0, 0),      // A
               acq(1, 0), rel(1, 0), acq(1, 1), rel(1, 1),  // B bridges
               acq(2, 1), wr(2, 9), rel(2, 1)},     // C
              true);
}

TEST(HbOracle, ForkOrdersParentWritesBeforeChild) {
  expect_both({wr(0, 3), fork(0, 1), rd(1, 3)}, true);
}

TEST(HbOracle, ParentAccessAfterForkRacesWithChild) {
  expect_both({fork(0, 1), wr(1, 3), rd(0, 3)}, false);
}

TEST(HbOracle, JoinOrdersChildWritesBeforeJoiner) {
  expect_both({fork(0, 1), wr(1, 3), join(0, 1), rd(0, 3)}, true);
}

TEST(HbOracle, GrandchildOrderedThroughForkChain) {
  expect_both({wr(0, 4), fork(0, 1), fork(1, 2), rd(2, 4)}, true);
}

TEST(HbOracle, FirstRacePairIsEarliest) {
  const Trace t = {wr(0, 1), rd(0, 1), wr(1, 1), wr(1, 2), rd(2, 2)};
  const auto res = analyze(t);
  ASSERT_FALSE(res.race_free());
  EXPECT_EQ(res.first_race->first, 0u);   // wr(0,1)
  EXPECT_EQ(res.first_race->second, 2u);  // wr(1,1)
  const auto res2 = analyze_closure(t);
  ASSERT_FALSE(res2.race_free());
  EXPECT_EQ(res2.first_race->second, 2u);
}

TEST(HbOracle, ReleaseItselfHappensBeforeAcquire) {
  // The write in the first critical section is ordered even when it is the
  // release's final action before handing off.
  expect_both({acq(0, 0), rel(0, 0), acq(1, 0), rel(1, 0)}, true);
}

// Property: the two oracle implementations agree on feasible random traces
// across generator configurations, racy and race-free alike.
struct OracleAgreeParam {
  double disciplined;
  std::uint32_t threads;
  std::uint32_t vars;
};

class OracleAgreement : public ::testing::TestWithParam<OracleAgreeParam> {};

TEST_P(OracleAgreement, VcAndClosureAgree) {
  const OracleAgreeParam p = GetParam();
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    GeneratorConfig cfg;
    cfg.initial_threads = p.threads;
    cfg.max_threads = 2;
    cfg.vars = p.vars;
    cfg.ops = 120;
    cfg.disciplined_fraction = p.disciplined;
    cfg.seed = seed;
    const Trace t = generate(cfg);
    ASSERT_TRUE(is_feasible(t));
    const HbResult a = analyze(t);
    const HbResult b = analyze_closure(t);
    ASSERT_EQ(a.race_free(), b.race_free()) << to_string(t);
    if (!a.race_free()) {
      // Both find the same earliest racing access.
      EXPECT_EQ(a.first_race->second, b.first_race->second) << to_string(t);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OracleAgreement,
    ::testing::Values(OracleAgreeParam{1.0, 2, 6}, OracleAgreeParam{0.8, 3, 6},
                      OracleAgreeParam{0.5, 4, 4}, OracleAgreeParam{0.0, 2, 3},
                      OracleAgreeParam{0.9, 4, 10}));

}  // namespace
}  // namespace vft::trace
