// The always-on sampling layer (src/vft/sampling.h) end to end through
// the C ABI and the ambient session, against its four contract points:
//
//   exactness   rate=1.0 is bit-identical to the ungated detector on
//               every detector rule count (the gate may only *remove*
//               work, and at full rate it removes none);
//   recall      a racy program is detected within a bounded number of
//               seeded runs - immediately at the default budget (the
//               controller starts at full rate), and within a geometric
//               bound at a fixed partial rate;
//   precision   sampling never *adds* races: race-free workloads stay
//               silent at any rate (sampled-out accesses only skip
//               checks, never fabricate state);
//   budget      the target-overhead controller's measured overhead
//               converges into +-2 points of VFT_BUDGET on a sustained
//               workload, with the rate throttled below 1.
//
// Plus the config grammar, the adaptive cooldown/reheat state machine,
// and the report/stats plumbing the `vft run` banner scrapes.
//
// Tests share the process-global Session; each reconfigures sampling via
// the environment and reset() (the gate is re-read from VFT_SAMPLING /
// VFT_BUDGET on every backend creation).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "abi/vft_abi.h"
#include "runtime/session.h"
#include "vft/report_io.h"
#include "vft/sampling.h"
#include "vft/stats.h"

namespace {

using vft::Rule;
using vft::rt::ambient::Session;

/// Reconfigure the process-global session's sampling from scratch.
/// nullptr spec/budget unsets the variable.
void configure_sampling(const char* spec, const char* budget = nullptr) {
  if (spec != nullptr) {
    setenv("VFT_SAMPLING", spec, 1);
  } else {
    unsetenv("VFT_SAMPLING");
  }
  if (budget != nullptr) {
    setenv("VFT_BUDGET", budget, 1);
  } else {
    unsetenv("VFT_BUDGET");
  }
  Session::instance().configure("v2");
  Session::instance().reset();
  Session::instance().backend();  // force creation: publishes the gate
  Session::instance().rule_stats().reset();
}

/// Leave no sampling environment behind for later test binaries.
struct EnvGuard {
  ~EnvGuard() {
    unsetenv("VFT_SAMPLING");
    unsetenv("VFT_BUDGET");
  }
};

/// Two implicitly-attached threads whose slots are simultaneously live
/// (abi_test's idiom): each runs `body(step)`, signals, and spins until
/// the other signalled before detaching.
template <typename Fn>
void run_concurrent_pair(Fn body) {
  std::atomic<int> done{0};
  auto racer = [&](int who) {
    vft_attach();
    body(who);
    done.fetch_add(1, std::memory_order_release);
    while (done.load(std::memory_order_acquire) < 2) {
      std::this_thread::yield();
    }
    vft_detach();
  };
  std::thread a(racer, 0), b(racer, 1);
  a.join();
  b.join();
}

/// A deterministic mixed workload: a private same-epoch sweep, a range
/// write, a lock-ordered handoff (no race), and one deterministic
/// write-write race (writer order fixed by a raw flag, which is not an
/// instrumented sync event).
struct Workload {
  std::vector<std::uint64_t> buf = std::vector<std::uint64_t>(512, 1);
  long shared_locked = 0;
  long racy = 0;
  int mutex_tag = 0;  // only its address is named to the ABI

  void run() {
    for (const std::uint64_t& w : buf) vft_write8(&w);
    for (int pass = 0; pass < 4; ++pass) {
      for (const std::uint64_t& w : buf) vft_read8(&w);
    }
    vft_range_write(buf.data(), buf.size() * sizeof(buf[0]));

    std::atomic<bool> first_done{false};
    run_concurrent_pair([&](int who) {
      if (who == 0) {
        vft_mutex_lock(&mutex_tag);
        vft_write8(&shared_locked);
        vft_mutex_unlock(&mutex_tag);
        vft_write8(&racy);
        first_done.store(true, std::memory_order_release);
      } else {
        while (!first_done.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        vft_mutex_lock(&mutex_tag);
        vft_write8(&shared_locked);
        vft_mutex_unlock(&mutex_tag);
        vft_write8(&racy);  // racy: no edge orders this after who==0's
      }
    });
  }
};

/// Detector + sync rule counts (everything through kBarrier; the kFast*
/// and kSampledOut diagnostics are accounted separately by design).
std::vector<std::uint64_t> detector_rule_counts() {
  std::vector<std::uint64_t> v;
  for (std::size_t i = 0; i <= static_cast<std::size_t>(Rule::kBarrier); ++i) {
    v.push_back(
        Session::instance().rule_stats().count(static_cast<Rule>(i)));
  }
  return v;
}

// ---------------------------------------------------------------------
// Config grammar.
// ---------------------------------------------------------------------

TEST(SamplingConfig, ParsesKeysAndImpliesEnabled) {
  vft::sampling::Config c;
  std::string err;
  ASSERT_TRUE(vft::sampling::parse_config("rate=0.25,policy=drop,seed=9",
                                          nullptr, &c, &err))
      << err;
  EXPECT_TRUE(c.enabled);
  EXPECT_DOUBLE_EQ(c.rate, 0.25);
  EXPECT_EQ(c.policy, vft::sampling::Config::Policy::kDrop);
  EXPECT_EQ(c.seed, 9u);
}

TEST(SamplingConfig, BudgetAloneEnablesAndParsesPercent) {
  vft::sampling::Config c;
  std::string err;
  ASSERT_TRUE(vft::sampling::parse_config(nullptr, "5%", &c, &err)) << err;
  EXPECT_TRUE(c.enabled);
  EXPECT_DOUBLE_EQ(c.budget_pct, 5.0);
}

TEST(SamplingConfig, OffWinsOverBudget) {
  vft::sampling::Config c;
  std::string err;
  ASSERT_TRUE(vft::sampling::parse_config("off", "5", &c, &err)) << err;
  EXPECT_FALSE(c.enabled);
}

TEST(SamplingConfig, MalformedSpecIsAnError) {
  vft::sampling::Config c;
  std::string err;
  EXPECT_FALSE(vft::sampling::parse_config("bogus=1", nullptr, &c, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(
      vft::sampling::parse_config("rate=nope", nullptr, &c, &err));
}

// ---------------------------------------------------------------------
// (i) rate=1.0 differential exactness.
// ---------------------------------------------------------------------

TEST(Sampling, RateOneIsBitIdenticalToNoGateOnDetectorRules) {
  EnvGuard guard;

  configure_sampling(nullptr);
  ASSERT_EQ(vft::sampling::Gate::active(), nullptr);
  {
    Workload w;
    w.run();
  }
  const auto baseline = detector_rule_counts();
  const auto baseline_races = vft_race_count();
  EXPECT_GE(baseline_races, 1u);

  for (const char* spec :
       {"rate=1,adaptive=0,policy=cell", "rate=1,adaptive=0,policy=drop"}) {
    configure_sampling(spec);
    ASSERT_NE(vft::sampling::Gate::active(), nullptr) << spec;
    {
      Workload w;
      w.run();
    }
    const auto gated = detector_rule_counts();
    ASSERT_EQ(gated.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(gated[i], baseline[i])
          << spec << ": rule " << vft::rule_name(static_cast<Rule>(i));
    }
    EXPECT_EQ(Session::instance().rule_stats().count(Rule::kSampledOut), 0u)
        << spec;
    EXPECT_EQ(vft_race_count(), baseline_races) << spec;
  }
}

// ---------------------------------------------------------------------
// (ii) racy programs detected within a seeded-run bound.
// ---------------------------------------------------------------------

/// One run of an 8-variable write-write race with deterministic writer
/// order. Returns the number of races the session saw.
std::uint64_t run_race_batch() {
  static long vars[8];
  std::atomic<bool> first_done{false};
  run_concurrent_pair([&](int who) {
    if (who == 0) {
      for (long& v : vars) vft_write8(&v);
      first_done.store(true, std::memory_order_release);
    } else {
      while (!first_done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (long& v : vars) vft_write8(&v);
    }
  });
  return vft_race_count();
}

TEST(Sampling, RacyDetectedImmediatelyAtDefaultBudget) {
  EnvGuard guard;
  // Default-budget deployment shape: the controller starts at full rate,
  // so a race near startup is caught in the very first seeded run.
  int detected_at = -1;
  for (int seed = 0; seed < 8; ++seed) {
    configure_sampling(("seed=" + std::to_string(seed)).c_str(), "5");
    if (run_race_batch() > 0) {
      detected_at = seed;
      break;
    }
  }
  EXPECT_EQ(detected_at, 0);
}

TEST(Sampling, RacyDetectedWithinSeededRunsAtPartialRate) {
  EnvGuard guard;
  // Fixed quarter rate, cell policy: each racy write is admitted with
  // p=1/4 independently, so one 8-variable batch detects with
  // p ~= 1 - 0.75^8 ~= 0.9 and ten seeds leave a ~1e-10 miss chance.
  int detected_at = -1;
  for (int seed = 0; seed < 10; ++seed) {
    configure_sampling(
        ("rate=0.25,adaptive=0,policy=cell,seed=" + std::to_string(seed))
            .c_str());
    if (run_race_batch() > 0) {
      detected_at = seed;
      break;
    }
  }
  EXPECT_GE(detected_at, 0) << "no race found in 10 seeded quarter-rate runs";
}

// ---------------------------------------------------------------------
// (iii) race-free workloads stay silent at any rate.
// ---------------------------------------------------------------------

TEST(Sampling, NoRaceWorkloadSilentUnderSampling) {
  EnvGuard guard;
  for (const char* spec :
       {"rate=0.5,policy=cell,seed=1", "rate=0.5,policy=drop,seed=2",
        "rate=0.01,adaptive=1,seed=3"}) {
    configure_sampling(spec);
    // Disjoint per-thread sweeps plus a lock-ordered shared counter. The
    // ABI lock hooks fire inside a *held* real mutex (the contract: the
    // hook runs after the native acquire / before the native release, so
    // the caller's lock is what serializes the LockState update).
    static long shared_counter = 0;
    static std::mutex real_mu;
    run_concurrent_pair([&](int who) {
      static long lanes[2][256];
      for (long& v : lanes[who]) {
        vft_write8(&v);
        vft_read8(&v);
      }
      for (int i = 0; i < 64; ++i) {
        real_mu.lock();
        vft_mutex_lock(&real_mu);
        vft_write8(&shared_counter);
        vft_mutex_unlock(&real_mu);
        real_mu.unlock();
      }
    });
    EXPECT_EQ(vft_race_count(), 0u) << spec;
  }
}

// ---------------------------------------------------------------------
// (iv) the controller holds the budget.
// ---------------------------------------------------------------------

TEST(Sampling, ControllerConvergesToBudget) {
  EnvGuard guard;
  configure_sampling("seed=3", "5");
  ASSERT_STREQ("", "");  // document: budget 5%, default policy, adaptive on

  std::vector<std::uint64_t> buf(4096, 1);
  for (const std::uint64_t& w : buf) vft_write8(&w);
  // Sustained same-epoch sweep: long enough that the full-rate startup
  // transient (the windows before the controller throttles) is a small
  // share of the cumulative overhead the snapshot averages over.
  for (int pass = 0; pass < 2048; ++pass) {
    for (const std::uint64_t& w : buf) vft_read8(&w);
  }

  vft_sampling_stats_s st;
  ASSERT_EQ(vft_sampling_stats(&st), 1);
  EXPECT_GT(st.adjustments, 4u) << "controller never stepped";
  EXPECT_LT(st.rate, 1.0) << "pure-detector sweep must throttle";
  EXPECT_NEAR(st.overhead_pct, 5.0, 2.0)
      << "sampled=" << st.sampled << " skipped=" << st.skipped
      << " rate=" << st.rate;
  EXPECT_GT(st.skipped, st.sampled) << "throttled run should skip most";
}

// ---------------------------------------------------------------------
// Adaptive cooldown / reheat state machine.
// ---------------------------------------------------------------------

TEST(Sampling, AdaptiveCoolsHotCleanRegionAndFreeHintReheats) {
  EnvGuard guard;
  configure_sampling("rate=1,adaptive=1,seed=5");

  // Hammer one page cleanly: every access is a sample point at rate 1,
  // so the per-page entry must climb its cooldown levels and start
  // discarding sample points.
  static long hot = 0;
  for (int i = 0; i < 20000; ++i) vft_read8(&hot);
  vft::sampling::Stats s1 = vft::sampling::Gate::active()->snapshot();
  EXPECT_GT(s1.cooled_out, 0u) << "clean hot page never cooled";

  // Freeing the page recycles its addresses: the cooled entry must go
  // back to full rate.
  vft_free_hint(&hot, sizeof(hot));
  vft::sampling::Stats s2 = vft::sampling::Gate::active()->snapshot();
  EXPECT_GT(s2.reheats, s1.reheats) << "free hint did not reheat the page";
}

TEST(Sampling, SpillReheatsThePage) {
  EnvGuard guard;
  configure_sampling("rate=1,adaptive=1,seed=6");
  vft::sampling::Gate* g = vft::sampling::Gate::active();
  ASSERT_NE(g, nullptr);
  const std::uint64_t before = g->snapshot().reheats;

  // A write-write conflict escalates the packed cell (a spill), which
  // must reheat the page even though no cooldown built up yet.
  static long contested = 0;
  std::atomic<bool> first_done{false};
  run_concurrent_pair([&](int who) {
    if (who == 0) {
      vft_write8(&contested);
      first_done.store(true, std::memory_order_release);
    } else {
      while (!first_done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      vft_write8(&contested);
    }
  });
  EXPECT_GT(vft_race_count(), 0u);
  EXPECT_GT(g->snapshot().reheats, before);
}

// ---------------------------------------------------------------------
// Stats / report plumbing.
// ---------------------------------------------------------------------

TEST(Sampling, StatsAbiDisabledAndEnabled) {
  EnvGuard guard;
  configure_sampling(nullptr);
  vft_sampling_stats_s st;
  EXPECT_EQ(vft_sampling_stats(&st), 0);
  EXPECT_EQ(st.sampled, 0u);
  EXPECT_STREQ(vft_sampling_describe(), "off");

  configure_sampling("rate=0.5,policy=drop,seed=4");
  static long x = 0;
  for (int i = 0; i < 1000; ++i) vft_read8(&x);
  ASSERT_EQ(vft_sampling_stats(&st), 1);
  EXPECT_GT(st.sampled + st.skipped, 0u);
  const std::string desc = vft_sampling_describe();
  EXPECT_NE(desc.find("drop"), std::string::npos) << desc;
}

TEST(Sampling, ReportCarriesSamplingBlockOnlyWhenEnabled) {
  EnvGuard guard;
  configure_sampling(nullptr);
  static long x = 0;
  vft_write8(&x);
  std::string off =
      vft::reportio::render_json(Session::instance().report_doc());
  EXPECT_EQ(off.find("\"sampling\""), std::string::npos);

  configure_sampling("rate=0.5,seed=8");
  vft_write8(&x);
  std::string on =
      vft::reportio::render_json(Session::instance().report_doc());
  EXPECT_NE(on.find("\"sampling\""), std::string::npos);
  EXPECT_NE(on.find("\"policy\": \"cell\""), std::string::npos) << on;
  EXPECT_NE(on.find("\"achieved_rate\""), std::string::npos);
}

}  // namespace
