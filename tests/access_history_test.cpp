// Unit tests for the bounded per-variable access history
// (vft/access_history.h): ring wraparound, stack interning, tid-slot
// reuse safety, range reset, the shadow-stack fallback in
// capture_event_stack (prior-side capture with no armed boundary), the
// detector-level prior-stack lookup, and rule-counter parity with the
// history layer on vs off.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "vft/access_history.h"
#include "vft/djit.h"
#include "vft/epoch.h"
#include "vft/event_ctx.h"
#include "vft/ft_cas.h"
#include "vft/ft_mutex.h"
#include "vft/report.h"
#include "vft/shadow_state.h"
#include "vft/stack.h"
#include "vft/stats.h"
#include "vft/vft_v1.h"
#include "vft/vft_v15.h"
#include "vft/vft_v2.h"

namespace vft {
namespace {

CallStack stack_of(std::initializer_list<std::uintptr_t> pcs) {
  CallStack cs;
  for (std::uintptr_t pc : pcs) cs.push(pc);
  return cs;
}

// ---------------------------------------------------------------------------
// Ring

TEST(Ring, FindsRecordedEntry) {
  history::Ring ring;
  history::Entry e;
  e.stack_id = 7;
  e.epoch = Epoch::make(1, 5);
  e.tid = 1;
  e.kind = history::AccessKind::kWrite;
  e.valid = 1;
  e.size = 4;
  ring.push(e);

  const history::Entry* hit =
      ring.find(Epoch::make(1, 5), history::AccessKind::kWrite);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->stack_id, 7u);
  EXPECT_EQ(hit->size, 4u);
  // Same epoch, wrong kind: no match.
  EXPECT_EQ(ring.find(Epoch::make(1, 5), history::AccessKind::kRead), nullptr);
  // Wrong epoch: no match.
  EXPECT_EQ(ring.find(Epoch::make(1, 6), history::AccessKind::kWrite), nullptr);
}

TEST(Ring, WraparoundEvictsOldestFirst) {
  history::Ring ring;
  const int n = static_cast<int>(history::kRingCapacity) + 3;
  for (int i = 0; i < n; ++i) {
    history::Entry e;
    e.stack_id = static_cast<std::uint32_t>(100 + i);
    e.epoch = Epoch::make(1, static_cast<Clock>(i + 1));
    e.tid = 1;
    e.kind = history::AccessKind::kWrite;
    e.valid = 1;
    ring.push(e);
  }
  // The three oldest entries were overwritten...
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ring.find(Epoch::make(1, static_cast<Clock>(i + 1)),
                        history::AccessKind::kWrite),
              nullptr)
        << "entry " << i << " should have been evicted";
  }
  // ...and the newest kRingCapacity entries all survive, with their ids.
  for (int i = 3; i < n; ++i) {
    const history::Entry* hit = ring.find(
        Epoch::make(1, static_cast<Clock>(i + 1)), history::AccessKind::kWrite);
    ASSERT_NE(hit, nullptr) << "entry " << i << " should survive";
    EXPECT_EQ(hit->stack_id, static_cast<std::uint32_t>(100 + i));
  }
}

TEST(Ring, NewestWinsWhenEpochsCollide) {
  // Two entries with the same (epoch, kind) - e.g. a re-recorded slow-path
  // access - must resolve to the most recent stack.
  history::Ring ring;
  for (std::uint32_t id : {1u, 2u}) {
    history::Entry e;
    e.stack_id = id;
    e.epoch = Epoch::make(2, 9);
    e.tid = 2;
    e.kind = history::AccessKind::kRead;
    e.valid = 1;
    ring.push(e);
  }
  const history::Entry* hit =
      ring.find(Epoch::make(2, 9), history::AccessKind::kRead);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->stack_id, 2u);
}

// ---------------------------------------------------------------------------
// StackTable

TEST(StackTable, InternDeduplicatesAndRoundTrips) {
  history::StackTable table;
  const CallStack a = stack_of({0x1000, 0x2000});
  const CallStack b = stack_of({0x1000, 0x2000, 0x3000});

  const std::uint32_t ida = table.intern(a);
  const std::uint32_t idb = table.intern(b);
  EXPECT_NE(ida, 0u);
  EXPECT_NE(idb, 0u);
  EXPECT_NE(ida, idb);
  // Same frames intern to the same id - no growth.
  EXPECT_EQ(table.intern(a), ida);
  EXPECT_EQ(table.intern(b), idb);
  EXPECT_EQ(table.size(), 2u);

  CallStack out;
  ASSERT_TRUE(table.lookup(ida, &out));
  EXPECT_EQ(out, a);
  ASSERT_TRUE(table.lookup(idb, &out));
  EXPECT_EQ(out, b);
}

TEST(StackTable, EmptyStackIsIdZeroAndLookupFails) {
  history::StackTable table;
  EXPECT_EQ(table.intern(CallStack{}), 0u);
  CallStack out;
  EXPECT_FALSE(table.lookup(0, &out));
  EXPECT_FALSE(table.lookup(42, &out));  // never interned
}

// ---------------------------------------------------------------------------
// AccessHistory

TEST(AccessHistory, RecordThenFindExactEpochAndKind) {
  history::AccessHistory h;
  const std::uint64_t var = 0xdead00;
  h.record(var, 1, Epoch::make(1, 3), history::AccessKind::kWrite, 8,
           stack_of({0x5000, 0x5100}));

  history::Entry e;
  ASSERT_TRUE(h.find(var, Epoch::make(1, 3), history::AccessKind::kWrite, &e));
  EXPECT_EQ(e.tid, 1u);
  EXPECT_EQ(e.size, 8u);
  CallStack cs;
  ASSERT_TRUE(h.stack_of(e.stack_id, &cs));
  EXPECT_EQ(cs, stack_of({0x5000, 0x5100}));

  // Kind and epoch must match exactly.
  EXPECT_FALSE(h.find(var, Epoch::make(1, 3), history::AccessKind::kRead, &e));
  EXPECT_FALSE(h.find(var, Epoch::make(1, 4), history::AccessKind::kWrite, &e));
  // Unknown variable: nothing.
  EXPECT_FALSE(h.find(0xbeef00, Epoch::make(1, 3),
                      history::AccessKind::kWrite, &e));
}

TEST(AccessHistory, SlotReuseDoesNotMasquerade) {
  // PR 5's tid-slot reuse machinery continues a retired thread's clock
  // (ThreadState(tid, predecessor)), so epochs on a reused slot are
  // strictly greater than every epoch the predecessor ever had. The
  // history's exact-epoch match therefore can never attribute a
  // successor's entry to the predecessor or vice versa.
  history::AccessHistory h;
  const std::uint64_t var = 0xaaaa00;

  ThreadState pred(1);
  pred.inc();  // 1@2
  pred.inc();  // 1@3
  const Epoch pred_epoch = pred.epoch();
  h.record(var, pred.t, pred_epoch, history::AccessKind::kWrite, 4,
           stack_of({0xAAAA}));

  ThreadState succ(1, pred.V);  // reused slot: continues at 1@4
  const Epoch succ_epoch = succ.epoch();
  ASSERT_FALSE(succ_epoch == pred_epoch);
  ASSERT_LT(pred_epoch.clock(), succ_epoch.clock());
  h.record(var, succ.t, succ_epoch, history::AccessKind::kWrite, 4,
           stack_of({0xBBBB}));

  history::Entry e;
  CallStack cs;
  ASSERT_TRUE(h.find(var, pred_epoch, history::AccessKind::kWrite, &e));
  ASSERT_TRUE(h.stack_of(e.stack_id, &cs));
  EXPECT_EQ(cs, stack_of({0xAAAA}));  // predecessor's stack, not successor's

  ASSERT_TRUE(h.find(var, succ_epoch, history::AccessKind::kWrite, &e));
  ASSERT_TRUE(h.stack_of(e.stack_id, &cs));
  EXPECT_EQ(cs, stack_of({0xBBBB}));
}

TEST(AccessHistory, ResetRangeDropsCoveredVarsOnly) {
  history::AccessHistory h;
  const std::uint64_t inside = 0x10008;
  const std::uint64_t outside = 0x20000;
  h.record(inside, 1, Epoch::make(1, 2), history::AccessKind::kWrite, 8,
           stack_of({0x1}));
  h.record(outside, 1, Epoch::make(1, 3), history::AccessKind::kWrite, 8,
           stack_of({0x2}));

  h.reset_range(0x10000, 0x100);

  history::Entry e;
  EXPECT_FALSE(
      h.find(inside, Epoch::make(1, 2), history::AccessKind::kWrite, &e));
  EXPECT_TRUE(
      h.find(outside, Epoch::make(1, 3), history::AccessKind::kWrite, &e));
}

TEST(AccessHistory, EnvDefaultOnExplicitOff) {
  unsetenv("VFT_HISTORY");
  EXPECT_TRUE(history::enabled_from_env());
  setenv("VFT_HISTORY", "off", 1);
  EXPECT_FALSE(history::enabled_from_env());
  setenv("VFT_HISTORY", "0", 1);
  EXPECT_FALSE(history::enabled_from_env());
  setenv("VFT_HISTORY", "1", 1);
  EXPECT_TRUE(history::enabled_from_env());
  unsetenv("VFT_HISTORY");
}

// ---------------------------------------------------------------------------
// Satellite: capture_event_stack falls back to the shadow call stack when
// the frame-pointer walk has nothing to start from (prior-side capture
// with no armed boundary).

struct TlsGuard {
  ~TlsGuard() {
    vft_tl_event_ctx = vft_event_ctx_s{};
    vft_tl_shadow_stack = vft_shadow_stack_s{};
  }
};

TEST(CaptureEventStack, EmptyWalkFallsBackToShadowStack) {
  TlsGuard guard;
  vft_tl_event_ctx = vft_event_ctx_s{};  // no boundary armed
  vft_tl_shadow_stack.depth = 3;
  vft_tl_shadow_stack.pc[0] = reinterpret_cast<const void*>(0x11000);  // outer
  vft_tl_shadow_stack.pc[1] = reinterpret_cast<const void*>(0x12000);
  vft_tl_shadow_stack.pc[2] = reinterpret_cast<const void*>(0x13000);  // inner

  const CallStack cs = capture_event_stack();
  // Innermost first, like the frame-pointer walk's output.
  EXPECT_EQ(cs, stack_of({0x13000, 0x12000, 0x11000}));
}

TEST(CaptureEventStack, ShadowFallbackSkipsNearNullFrames) {
  TlsGuard guard;
  vft_tl_event_ctx = vft_event_ctx_s{};
  vft_tl_shadow_stack.depth = 2;
  vft_tl_shadow_stack.pc[0] = reinterpret_cast<const void*>(0x11000);
  vft_tl_shadow_stack.pc[1] = reinterpret_cast<const void*>(0x10);  // bogus

  const CallStack cs = capture_event_stack();
  EXPECT_EQ(cs, stack_of({0x11000}));
}

// ---------------------------------------------------------------------------
// Detector-level: a race report carries the prior access's ring stack.

struct HistoryGuard {
  explicit HistoryGuard(history::AccessHistory* h) { history::install(h); }
  ~HistoryGuard() { history::install(nullptr); }
};

TEST(DetectorPrior, WriteWriteRaceCarriesPriorStack) {
  TlsGuard tls;
  HistoryGuard installed(new history::AccessHistory());
  RaceCollector races;
  VftV2 det(&races);

  ThreadState t1(1);
  ThreadState t0(0);
  VftV2::VarState x;
  x.id = 0x123450;

  // T1's write goes through [Write Exclusive] (slow path) and records its
  // armed stack into the ring.
  vft_tl_event_ctx.pc = reinterpret_cast<const void*>(0x5000);
  vft_tl_event_ctx.fp = nullptr;
  ASSERT_TRUE(det.write(t1, x));

  // T0's unordered write races; the report must look up T1's entry.
  vft_tl_event_ctx.pc = reinterpret_cast<const void*>(0x6000);
  vft_tl_event_ctx.fp = nullptr;
  EXPECT_FALSE(det.write(t0, x));

  const auto ctxs = races.contexts();
  ASSERT_EQ(ctxs.size(), 1u);
  EXPECT_EQ(ctxs[0].first.kind, RaceKind::kWriteWrite);
  EXPECT_EQ(ctxs[0].first.stack, stack_of({0x6000}));
  EXPECT_EQ(ctxs[0].first.prior_stack, stack_of({0x5000}));
  ASSERT_EQ(ctxs[0].prior_frames.size(), 1u);
  EXPECT_EQ(ctxs[0].prior_frames[0].pc, 0x5000u);
}

TEST(DetectorPrior, WriteReadRaceLooksUpPriorWrite) {
  TlsGuard tls;
  HistoryGuard installed(new history::AccessHistory());
  RaceCollector races;
  VftV2 det(&races);

  ThreadState t1(1);
  ThreadState t0(0);
  VftV2::VarState x;
  x.id = 0x123458;

  vft_tl_event_ctx.pc = reinterpret_cast<const void*>(0x7000);
  vft_tl_event_ctx.fp = nullptr;
  ASSERT_TRUE(det.write(t1, x));

  vft_tl_event_ctx.pc = reinterpret_cast<const void*>(0x8000);
  vft_tl_event_ctx.fp = nullptr;
  EXPECT_FALSE(det.read(t0, x));  // [Write-Read Race]

  const auto ctxs = races.contexts();
  ASSERT_EQ(ctxs.size(), 1u);
  EXPECT_EQ(ctxs[0].first.kind, RaceKind::kWriteRead);
  EXPECT_EQ(ctxs[0].first.prior_stack, stack_of({0x7000}));
}

TEST(DetectorPrior, HistoryOffDegradesToEmptyPriorStack) {
  TlsGuard tls;
  // No history installed: reports must look exactly like pre-history ones.
  RaceCollector races;
  VftV2 det(&races);

  ThreadState t1(1);
  ThreadState t0(0);
  VftV2::VarState x;
  x.id = 0x123460;

  ASSERT_TRUE(det.write(t1, x));
  EXPECT_FALSE(det.write(t0, x));

  const auto ctxs = races.contexts();
  ASSERT_EQ(ctxs.size(), 1u);
  EXPECT_TRUE(ctxs[0].first.prior_stack.empty());
  EXPECT_TRUE(ctxs[0].prior_frames.empty());
}

// ---------------------------------------------------------------------------
// Rule-counter parity: recording history must never perturb the Table 1
// rule distribution, for any detector in the family.

template <class D>
std::unique_ptr<D> make_detector(RaceCollector* races, RuleStats* stats) {
  return std::make_unique<D>(races, stats);
}
template <>
std::unique_ptr<FtMutex> make_detector<FtMutex>(RaceCollector* races,
                                                RuleStats* stats) {
  return std::make_unique<FtMutex>(races, stats, RuleSet::kVerifiedFT);
}
template <>
std::unique_ptr<FtCas> make_detector<FtCas>(RaceCollector* races,
                                            RuleStats* stats) {
  return std::make_unique<FtCas>(races, stats, RuleSet::kVerifiedFT);
}

/// Drive one detector through a mix that exercises same-epoch hits,
/// exclusive transitions, read sharing, and two races; return every rule
/// counter.
template <class D>
std::vector<std::uint64_t> rule_counts(bool with_history) {
  TlsGuard tls;
  history::install(with_history ? new history::AccessHistory() : nullptr);
  RaceCollector races;
  RuleStats stats;
  auto det = make_detector<D>(&races, &stats);

  ThreadState t0(0), t1(1), t2(2);
  typename D::VarState x;
  x.id = 0x77000;

  det->write(t0, x);
  det->write(t0, x);  // same epoch
  det->read(t0, x);
  det->read(t0, x);  // same epoch
  t1.join(t0.V);
  t0.inc();
  det->read(t1, x);  // ordered: share / shared
  det->read(t2, x);  // write-read race (t2 unordered with t0's write)
  t2.join(t0.V);
  t2.join(t1.V);
  det->write(t2, x);  // may race with t1's read depending on ordering above
  det->write(t2, x);  // same epoch

  history::install(nullptr);

  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < RuleStats::kN; ++i) {
    out.push_back(stats.count(static_cast<Rule>(i)));
  }
  return out;
}

template <class D>
void expect_parity(const char* name) {
  EXPECT_EQ(rule_counts<D>(false), rule_counts<D>(true)) << name;
}

TEST(RuleParity, HistoryOnOffIdenticalAcrossDetectors) {
  expect_parity<VftV1>("vft-v1");
  expect_parity<VftV15>("vft-v1.5");
  expect_parity<VftV2>("vft-v2");
  expect_parity<FtMutex>("ft-mutex");
  expect_parity<FtCas>("ft-cas");
  expect_parity<Djit>("djit");
}

}  // namespace
}  // namespace vft
