// Extension experiment E12: shadow-memory footprint. The paper's Section 9
// surveys shadow compression precisely because per-variable analysis state
// is the dominant memory cost of precise detectors. This bench reports:
//   - static VarState size per detector,
//   - measured bytes per shadowed element for a large instrumented array
//     (allocation deltas, including the vector-clock spill for read-shared
//     data), fine-grained vs coarse granularity,
//   - ThreadState/LockState sizes.
#include <cstdio>
#include <new>

#include "runtime/coarse_array.h"
#include "runtime/instrument.h"
#include "vft/detector.h"

namespace {

using namespace vft;

// Allocation meter: counts bytes handed out by global new.
std::size_t g_alloc_bytes = 0;

}  // namespace

void* operator new(std::size_t n) {
  g_alloc_bytes += n;
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  g_alloc_bytes += n;
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

/// Bytes allocated while building an N-element instrumented array and
/// driving it into the given sharing mode.
template <Detector D>
std::size_t measure(std::size_t n, bool make_shared) {
  RaceCollector races;
  rt::Runtime<D> R{D(&races)};
  typename rt::Runtime<D>::MainScope scope(R);
  const std::size_t before = g_alloc_bytes;
  rt::Array<std::uint64_t, D> a(R, n);
  if (make_shared) {
    // Two extra reader threads force every element into SHARED mode (the
    // vector-clock spill path).
    rt::parallel_for_threads(R, 2, [&](std::uint32_t) {
      for (std::size_t i = 0; i < n; ++i) (void)a.load(i);
    });
  }
  const std::size_t after = g_alloc_bytes;
  return after - before;
}

template <Detector D>
void row(std::size_t n) {
  const double excl =
      static_cast<double>(measure<D>(n, false)) / static_cast<double>(n);
  const double shared =
      static_cast<double>(measure<D>(n, true)) / static_cast<double>(n);
  std::printf("%-16s %12zu %14.1f %14.1f\n", D::kName,
              sizeof(typename D::VarState), excl, shared);
}

}  // namespace

int main() {
  constexpr std::size_t kN = 1 << 15;
  std::printf("Shadow-memory footprint (%zu-element array, 8-byte payload)\n\n",
              kN);
  std::printf("%-16s %12s %14s %14s\n", "detector", "sizeof(VS)",
              "B/elem excl", "B/elem shared");
  row<rt::NullTool>(kN);
  row<VftV1>(kN);
  row<VftV15>(kN);
  row<VftV2>(kN);
  row<FtMutex>(kN);
  row<FtCas>(kN);
  row<Djit>(kN);

  std::printf("\nThreadState: %zu B, LockState: %zu B, VectorClock inline "
              "capacity: %u epochs (%zu B)\n",
              sizeof(ThreadState), sizeof(LockState), VectorClock::kInline,
              sizeof(VectorClock));

  // Coarse shadow at granularity 64 for comparison (the Section 9 knob).
  {
    RaceCollector races;
    rt::Runtime<VftV2> R{VftV2(&races)};
    rt::Runtime<VftV2>::MainScope scope(R);
    const std::size_t before = g_alloc_bytes;
    rt::CoarseArray<std::uint64_t, VftV2> a(R, kN, 64);
    const std::size_t after = g_alloc_bytes;
    std::printf("CoarseArray<v2> granule=64: %.1f B/elem exclusive\n",
                static_cast<double>(after - before) / kN);
  }
  std::printf("\ncontext: 8 bytes of target data cost ~2 VarState pointers "
              "of shadow in fine-grained mode - the memory pressure that "
              "motivates the compression line of work.\n");
  return 0;
}
