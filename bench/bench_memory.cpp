// Extension experiment E12: shadow-memory footprint. The paper's Section 9
// surveys shadow compression precisely because per-variable analysis state
// is the dominant memory cost of precise detectors. This bench reports:
//   - static VarState size per detector,
//   - measured bytes per shadowed element for a large instrumented array
//     (allocation deltas, including the vector-clock spill for read-shared
//     data), fine-grained vs coarse granularity,
//   - measured bytes per *word* of target memory for the packed-cell
//     shadow (PackedShadowSpace): epoch-only workloads stay in the 16 B
//     cell+spill-slot pages, read-shared workloads pay the VarState spill,
//   - ThreadState/LockState sizes.
#include <cstdio>
#include <new>
#include <vector>

#include "harness.h"
#include "runtime/coarse_array.h"
#include "runtime/instrument.h"
#include "vft/detector.h"

namespace {

using namespace vft;

// Allocation meter: counts bytes handed out by global new.
std::size_t g_alloc_bytes = 0;

}  // namespace

void* operator new(std::size_t n) {
  g_alloc_bytes += n;
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  g_alloc_bytes += n;
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

/// Bytes allocated while building an N-element instrumented array and
/// driving it into the given sharing mode.
template <Detector D>
std::size_t measure(std::size_t n, bool make_shared) {
  RaceCollector races;
  rt::Runtime<D> R{D(&races)};
  typename rt::Runtime<D>::MainScope scope(R);
  const std::size_t before = g_alloc_bytes;
  rt::Array<std::uint64_t, D> a(R, n);
  if (make_shared) {
    // Two extra reader threads force every element into SHARED mode (the
    // vector-clock spill path).
    rt::parallel_for_threads(R, 2, [&](std::uint32_t) {
      for (std::size_t i = 0; i < n; ++i) (void)a.load(i);
    });
  }
  const std::size_t after = g_alloc_bytes;
  return after - before;
}

template <Detector D>
void row(std::size_t n, bench::JsonReport& report) {
  const double excl =
      static_cast<double>(measure<D>(n, false)) / static_cast<double>(n);
  const double shared =
      static_cast<double>(measure<D>(n, true)) / static_cast<double>(n);
  std::printf("%-16s %12zu %14.1f %14.1f\n", D::kName,
              sizeof(typename D::VarState), excl, shared);
  report.add("fine_grained", D::kName,
             {{"sizeof_varstate", static_cast<double>(sizeof(typename D::VarState))},
              {"bytes_per_elem_exclusive", excl},
              {"bytes_per_elem_shared", shared}});
}

/// Packed-cell shadow bytes per target word: page allocations while one
/// thread writes every word of an n-word buffer (epoch-only: nothing
/// spills), then while two extra readers force every word read-shared
/// (every cell escalates and spills a VarState). The space's fixed
/// 512 KiB page directory is excluded - like a page table, it is a
/// one-time cost amortized over the whole address space.
template <Detector D>
void packed_row(std::size_t n, double inline_excl_bpw,
                bench::JsonReport& report) {
  RaceCollector races;
  rt::Runtime<D> R{D(&races)};
  typename rt::Runtime<D>::MainScope scope(R);
  std::vector<std::uint64_t> buf(n, 0);
  auto& space = R.packed_space();
  const std::size_t before = g_alloc_bytes;
  for (std::uint64_t& w : buf) rt::instrumented_write(R, space, &w);
  const std::size_t epoch_only = g_alloc_bytes - before;
  rt::parallel_for_threads(R, 2, [&](std::uint32_t) {
    for (const std::uint64_t& w : buf) rt::instrumented_read(R, space, &w);
  });
  const std::size_t with_spills = g_alloc_bytes - before;
  const double excl = static_cast<double>(epoch_only) / static_cast<double>(n);
  const double shared =
      static_cast<double>(with_spills) / static_cast<double>(n);
  const double ratio = inline_excl_bpw > 0.0 ? inline_excl_bpw / excl : 0.0;
  std::printf("%-16s %12zu %14.1f %14.1f %10.1fx\n", D::kName,
              space.spilled(), excl, shared, ratio);
  report.add("packed_space", D::kName,
             {{"bytes_per_word_epoch_only", excl},
              {"bytes_per_word_read_shared", shared},
              {"spilled_words", static_cast<double>(space.spilled())},
              {"inline_vs_packed_exclusive_ratio", ratio}});
}

}  // namespace

template <Detector D>
void packed_vs_inline(std::size_t n, bench::JsonReport& report) {
  const double inline_excl =
      static_cast<double>(measure<D>(n, false)) / static_cast<double>(n);
  packed_row<D>(n, inline_excl, report);
}

int main() {
  constexpr std::size_t kN = 1 << 15;
  bench::JsonReport report("memory");
  report.context("elements", std::to_string(kN));
  std::printf("Shadow-memory footprint (%zu-element array, 8-byte payload)\n\n",
              kN);
  std::printf("%-16s %12s %14s %14s\n", "detector", "sizeof(VS)",
              "B/elem excl", "B/elem shared");
  row<rt::NullTool>(kN, report);
  row<VftV1>(kN, report);
  row<VftV15>(kN, report);
  row<VftV2>(kN, report);
  row<FtMutex>(kN, report);
  row<FtCas>(kN, report);
  row<Djit>(kN, report);

  std::printf("\nPacked-cell shadow (PackedShadowSpace pages; %zu words; "
              "spilled counted after the read-shared phase)\n\n", kN);
  std::printf("%-16s %12s %14s %14s %10s\n", "detector", "spilled",
              "B/w epoch", "B/w shared", "vs inline");
  packed_vs_inline<VftV1>(kN, report);
  packed_vs_inline<VftV15>(kN, report);
  packed_vs_inline<VftV2>(kN, report);
  packed_vs_inline<FtMutex>(kN, report);
  packed_vs_inline<FtCas>(kN, report);
  packed_vs_inline<Djit>(kN, report);

  std::printf("\nThreadState: %zu B, LockState: %zu B, VectorClock inline "
              "capacity: %u epochs (%zu B)\n",
              sizeof(ThreadState), sizeof(LockState), VectorClock::kInline,
              sizeof(VectorClock));

  // Coarse shadow at granularity 64 for comparison (the Section 9 knob).
  {
    RaceCollector races;
    rt::Runtime<VftV2> R{VftV2(&races)};
    rt::Runtime<VftV2>::MainScope scope(R);
    const std::size_t before = g_alloc_bytes;
    rt::CoarseArray<std::uint64_t, VftV2> a(R, kN, 64);
    const std::size_t after = g_alloc_bytes;
    std::printf("CoarseArray<v2> granule=64: %.1f B/elem exclusive\n",
                static_cast<double>(after - before) / kN);
    report.add("coarse", "v2_granule_64",
               {{"bytes_per_elem_exclusive",
                 static_cast<double>(after - before) / kN}});
  }
  std::printf("\ncontext: 8 bytes of target data cost ~2 VarState pointers "
              "of shadow in fine-grained mode - the memory pressure that "
              "motivates the compression line of work. The packed cell cuts "
              "the epoch-only cost to one 16 B page slot per word and defers "
              "the VarState until a word actually goes read-shared.\n");
  report.write("BENCH_memory.json");
  return 0;
}
