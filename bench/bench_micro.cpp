// Experiment E9: micro-costs of the building blocks - epoch algebra,
// vector-clock operations by size, and the per-handler fast/slow path
// latencies of each detector variant. google-benchmark based.
#include <benchmark/benchmark.h>

#include "vft/detector.h"

namespace {

using namespace vft;

void BM_EpochOps(benchmark::State& state) {
  Epoch a = Epoch::make(3, 100);
  Epoch b = Epoch::make(3, 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(leq(a, b));
    benchmark::DoNotOptimize(max(a, b));
    benchmark::DoNotOptimize(a.inc());
  }
}
BENCHMARK(BM_EpochOps);

void BM_VectorClockLeq(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  VectorClock a, b;
  for (Tid t = 0; t < n; ++t) {
    a.set(t, Epoch::make(t, 5));
    b.set(t, Epoch::make(t, 9));
  }
  for (auto _ : state) benchmark::DoNotOptimize(a.leq(b));
}
BENCHMARK(BM_VectorClockLeq)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_VectorClockJoin(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  VectorClock a, b;
  for (Tid t = 0; t < n; ++t) {
    a.set(t, Epoch::make(t, 5));
    b.set(t, Epoch::make(t, 9));
  }
  for (auto _ : state) {
    a.join(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_VectorClockJoin)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_SyncVectorClockGet(benchmark::State& state) {
  SyncVectorClock v;
  v.set_locked(5, Epoch::make(5, 3));
  for (auto _ : state) benchmark::DoNotOptimize(v.get(5));
}
BENCHMARK(BM_SyncVectorClockGet);

// --- handler fast paths: the costs Table 1 is made of ---

template <typename D>
void BM_ReadSameEpoch(benchmark::State& state) {
  D d(nullptr, nullptr);
  ThreadState st(0);
  typename D::VarState x;
  d.read(st, x);  // prime: R = E_t
  for (auto _ : state) benchmark::DoNotOptimize(d.read(st, x));
}
BENCHMARK_TEMPLATE(BM_ReadSameEpoch, VftV1);
BENCHMARK_TEMPLATE(BM_ReadSameEpoch, VftV15);
BENCHMARK_TEMPLATE(BM_ReadSameEpoch, VftV2);
BENCHMARK_TEMPLATE(BM_ReadSameEpoch, FtMutex);
BENCHMARK_TEMPLATE(BM_ReadSameEpoch, FtCas);
BENCHMARK_TEMPLATE(BM_ReadSameEpoch, Djit);

template <typename D>
void BM_WriteSameEpoch(benchmark::State& state) {
  D d(nullptr, nullptr);
  ThreadState st(0);
  typename D::VarState x;
  d.write(st, x);
  for (auto _ : state) benchmark::DoNotOptimize(d.write(st, x));
}
BENCHMARK_TEMPLATE(BM_WriteSameEpoch, VftV1);
BENCHMARK_TEMPLATE(BM_WriteSameEpoch, VftV15);
BENCHMARK_TEMPLATE(BM_WriteSameEpoch, VftV2);
BENCHMARK_TEMPLATE(BM_WriteSameEpoch, FtMutex);
BENCHMARK_TEMPLATE(BM_WriteSameEpoch, FtCas);
BENCHMARK_TEMPLATE(BM_WriteSameEpoch, Djit);

template <typename D>
void BM_ReadSharedSameEpoch(benchmark::State& state) {
  D d(nullptr, nullptr);
  ThreadState s0(0), s1(1), st(2);
  typename D::VarState x;
  d.read(s0, x);
  d.read(s1, x);  // force SHARED
  d.read(st, x);  // prime V[2]
  for (auto _ : state) benchmark::DoNotOptimize(d.read(st, x));
}
BENCHMARK_TEMPLATE(BM_ReadSharedSameEpoch, VftV1);
BENCHMARK_TEMPLATE(BM_ReadSharedSameEpoch, VftV15);
BENCHMARK_TEMPLATE(BM_ReadSharedSameEpoch, VftV2);
BENCHMARK_TEMPLATE(BM_ReadSharedSameEpoch, FtMutex);
BENCHMARK_TEMPLATE(BM_ReadSharedSameEpoch, FtCas);

// Epoch-advancing read: every iteration takes the [Read Exclusive] slow
// path (bounded by clock overflow, so restart the state periodically).
template <typename D>
void BM_ReadExclusiveSlowPath(benchmark::State& state) {
  D d(nullptr, nullptr);
  auto st = std::make_unique<ThreadState>(0);
  auto x = std::make_unique<typename D::VarState>();
  std::uint32_t c = 0;
  for (auto _ : state) {
    st->inc();  // new epoch each access -> never same-epoch
    benchmark::DoNotOptimize(d.read(*st, *x));
    if (++c == Epoch::kMaxClock - 4) {
      st = std::make_unique<ThreadState>(0);
      x = std::make_unique<typename D::VarState>();
      c = 0;
    }
  }
}
BENCHMARK_TEMPLATE(BM_ReadExclusiveSlowPath, VftV1);
BENCHMARK_TEMPLATE(BM_ReadExclusiveSlowPath, VftV2);
BENCHMARK_TEMPLATE(BM_ReadExclusiveSlowPath, FtCas);

void BM_SpecStep(benchmark::State& state) {
  Spec spec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.on_read(0, 0));
  }
}
BENCHMARK(BM_SpecStep);

}  // namespace

BENCHMARK_MAIN();
