// Shadow-backend microbenchmark: the per-access cost of mapping a raw
// address to its VarState, mutex-sharded hash table (ShadowTable) vs
// lock-free two-level page map (ShadowSpace), across thread counts.
//
// Two workloads over a words-sized double buffer:
//   private  each worker sweeps its own slice, one write per 8 reads.
//            After the first sweep every access hits a same-epoch fast
//            path, so the detector contributes a few ns and the lookup
//            dominates - the raw-pointer hot path a compiler pass hits.
//   shared   every worker sweeps the whole buffer read-only: read-share
//            inflation once, then the [Read Shared Same Epoch] fast path;
//            all threads contend on the same shadow entries.
//
// A lookup-only section repeats the private workload under NullTool
// (handlers compile to nothing), isolating pure of() cost.
//
// Environment: VFT_SHADOW_WORDS (default 32768), VFT_SHADOW_ITERS
// (default 64), VFT_SHADOW_MAXTHREADS (default 8).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "kernels/kernel.h"

namespace {

using namespace vft;

enum class Backend { kTable, kSpace };

std::size_t env_or(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    return static_cast<std::size_t>(std::atoll(v));
  }
  return fallback;
}

/// Seconds for `iters` sweeps; also returns the access count via *ops.
template <typename D>
double measure(Backend which, bool shared_mode, std::uint32_t threads,
               std::size_t words, std::size_t iters, std::uint64_t* ops) {
  std::vector<double> buf(words, 0.0);
  RaceCollector races;
  rt::Runtime<D> R{D(&races)};
  typename rt::Runtime<D>::MainScope scope(R);

  auto timed = [&](auto& backend) {
    const auto t0 = std::chrono::steady_clock::now();
    rt::parallel_for_threads(R, threads, [&](std::uint32_t w) {
      const kernels::Slice s = shared_mode
                                   ? kernels::Slice{0, words}
                                   : kernels::slice_of(words, w, threads);
      for (std::size_t it = 0; it < iters; ++it) {
        for (std::size_t i = s.begin; i < s.end; ++i) {
          if (!shared_mode && (i & 7u) == 7u) {
            rt::instrumented_write(R, backend, &buf[i]);
          } else {
            rt::instrumented_read(R, backend, &buf[i]);
          }
        }
      }
    });
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };

  const std::size_t per_thread =
      shared_mode ? words : words / threads + (words % threads != 0);
  *ops = static_cast<std::uint64_t>(threads) * iters * per_thread;
  const double secs = which == Backend::kTable ? timed(R.shadow_table())
                                               : timed(R.shadow_space());
  if (!races.empty()) {
    std::fprintf(stderr, "FATAL: benchmark workload reported races\n");
    std::exit(1);
  }
  return secs;
}

template <typename D>
void section(const char* title, bool shared_mode, std::size_t words,
             std::size_t iters, std::uint32_t max_threads) {
  std::printf("%s\n", title);
  std::printf("%8s %12s %12s %9s\n", "threads", "table ns/op", "space ns/op",
              "speedup");
  for (std::uint32_t t = 1; t <= max_threads; t *= 2) {
    std::uint64_t ops = 0;
    const double ts = measure<D>(Backend::kTable, shared_mode, t, words,
                                 iters, &ops);
    const double ss = measure<D>(Backend::kSpace, shared_mode, t, words,
                                 iters, &ops);
    const double tn = 1e9 * ts / static_cast<double>(ops);
    const double sn = 1e9 * ss / static_cast<double>(ops);
    std::printf("%8u %12.2f %12.2f %8.2fx\n", t, tn, sn, tn / sn);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const std::size_t words = env_or("VFT_SHADOW_WORDS", 32768);
  const std::size_t iters = env_or("VFT_SHADOW_ITERS", 64);
  const auto max_threads =
      static_cast<std::uint32_t>(env_or("VFT_SHADOW_MAXTHREADS", 8));

  std::printf("Shadow backend lookup cost: sharded-hash ShadowTable vs "
              "two-level ShadowSpace\n");
  std::printf("(%zu words, %zu sweeps; %s)\n\n", words, iters,
              vft::rt::ShadowGeometry::describe().c_str());

  section<vft::VftV2>("VerifiedFT-v2, private slices (write-heavy hot path)",
                      false, words, iters, max_threads);
  section<vft::VftV2>("VerifiedFT-v2, fully shared read-only",
                      true, words, iters / 4 + 1, max_threads);
  section<vft::rt::NullTool>("lookup only (NullTool handlers)",
                             false, words, iters, max_threads);
  return 0;
}
