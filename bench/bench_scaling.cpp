// Experiment E10: read-shared contention scaling. Section 4 attributes
// VerifiedFT-v1's 15x overhead to two costs: the per-access lock
// round-trip, and lock contention on read-shared VarStates, which "in
// effect serializes otherwise-concurrent accesses to read-shared
// variables". This bench isolates that effect: T threads repeatedly read
// one small shared table; reported is wall time per detector and thread
// count.
//
// On a single-core host the *contention* component is muted (threads
// time-slice rather than collide), so the per-access lock cost dominates;
// on a multi-core host the v1 column degrades with T while v2 stays flat.
// EXPERIMENTS.md discusses both regimes.
#include <chrono>

#include "harness.h"

namespace {

using namespace vft;
using namespace vft::bench;

volatile std::uint64_t g_sink;
void benchmark_keep(std::uint64_t v) { g_sink = v; }

template <Detector D, typename... ToolArgs>
double run_read_shared(std::uint32_t threads, std::uint32_t scale,
                       ToolArgs&&... args) {
  RaceCollector races;
  rt::Runtime<D> R(D(&races, std::forward<ToolArgs>(args)...));
  typename rt::Runtime<D>::MainScope scope(R);
  const std::size_t entries = 128;
  const std::size_t reps = 2000ull * scale;
  rt::Array<std::uint64_t, D> table(R, entries, 3);
  const auto t0 = std::chrono::steady_clock::now();
  rt::parallel_for_threads(R, threads, [&](std::uint32_t) {
    std::uint64_t acc = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      for (std::size_t i = 0; i < entries; ++i) acc += table.load(i);
    }
    benchmark_keep(acc);
  });
  const auto t1 = std::chrono::steady_clock::now();
  VFT_CHECK(races.empty());
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const BenchConfig bc = BenchConfig::from_env();
  JsonReport report("scaling");
  report.context("scale", std::to_string(bc.scale));
  std::printf("Read-shared scaling: T threads re-reading one shared table "
              "(seconds; scale=%u)\n\n", bc.scale);
  std::printf("%8s %10s %10s %10s %10s %10s %10s\n", "threads", "none", "v1",
              "v1.5", "v2", "FT-Mutex", "FT-CAS");
  for (const std::uint32_t t : {1u, 2u, 4u, 8u}) {
    const double n0 = run_read_shared<rt::NullTool>(t, bc.scale);
    const double v1 = run_read_shared<VftV1>(t, bc.scale);
    const double v15 = run_read_shared<VftV15>(t, bc.scale);
    const double v2 = run_read_shared<VftV2>(t, bc.scale);
    const double fm = run_read_shared<FtMutex>(t, bc.scale);
    const double fc = run_read_shared<FtCas>(t, bc.scale);
    std::printf("%8u %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f\n", t, n0, v1,
                v15, v2, fm, fc);
    report.add("read_shared_seconds", "threads_" + std::to_string(t),
               {{"threads", static_cast<double>(t)},
                {"none", n0},
                {"v1", v1},
                {"v15", v15},
                {"v2", v2},
                {"ft_mutex", fm},
                {"ft_cas", fc}});
  }
  report.write("BENCH_scaling.json");
  std::printf("\nexpectation: v1/v1.5 pay a lock per read (and serialize "
              "under real parallelism); v2/FT-CAS stay near the base "
              "line's slope\n");
  return 0;
}
