// Experiment E10: read-shared contention scaling. Section 4 attributes
// VerifiedFT-v1's 15x overhead to two costs: the per-access lock
// round-trip, and lock contention on read-shared VarStates, which "in
// effect serializes otherwise-concurrent accesses to read-shared
// variables". This bench isolates that effect: T threads repeatedly read
// one small shared table; reported is wall time per detector and thread
// count, normalized to ns per access.
//
// Beyond the detector columns, two *mode* columns pin down where the
// deployed stack sits relative to the inlined-wrapper ideal:
//   abi     the same workload pushed through the C ABI's vft_read8
//           (header-inlined fast path + devirtualized slow dispatch on
//           the process-global session) - what an LD_PRELOADed binary
//           actually pays;
//   packed  the same workload on the packed-cell shadow space with the
//           v2 tool (the out-of-line fast-path floor the ABI's inline
//           header is chasing).
//
// On a single-core host the *contention* component is muted (threads
// time-slice rather than collide), so the per-access lock cost dominates;
// on a multi-core host the v1 column degrades with T while v2 stays flat.
// EXPERIMENTS.md discusses both regimes.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "abi/vft_abi.h"
#include "harness.h"
#include "runtime/session.h"

namespace {

using namespace vft;
using namespace vft::bench;

volatile std::uint64_t g_sink;
void benchmark_keep(std::uint64_t v) { g_sink = v; }

constexpr std::size_t kEntries = 128;

std::size_t reps_for(std::uint32_t scale) { return 2000ull * scale; }

/// ns per access for a wall-time of `secs`: each of T threads performs
/// reps * entries reads concurrently, so the per-access latency a thread
/// observes is wall / (reps * entries).
double ns_access(double secs, std::uint32_t scale) {
  return 1e9 * secs /
         (static_cast<double>(reps_for(scale)) *
          static_cast<double>(kEntries));
}

template <Detector D, typename... ToolArgs>
double run_read_shared(std::uint32_t threads, std::uint32_t scale,
                       ToolArgs&&... args) {
  RaceCollector races;
  rt::Runtime<D> R(D(&races, std::forward<ToolArgs>(args)...));
  typename rt::Runtime<D>::MainScope scope(R);
  const std::size_t reps = reps_for(scale);
  rt::Array<std::uint64_t, D> table(R, kEntries, 3);
  const auto t0 = std::chrono::steady_clock::now();
  rt::parallel_for_threads(R, threads, [&](std::uint32_t) {
    std::uint64_t acc = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      for (std::size_t i = 0; i < kEntries; ++i) acc += table.load(i);
    }
    benchmark_keep(acc);
  });
  const auto t1 = std::chrono::steady_clock::now();
  VFT_CHECK(races.empty());
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Mode `packed`: the same sweep against the packed-cell shadow space.
/// Under multiple readers the cells spill to read-shared VarStates and
/// the gated path carries the traffic; with one reader the 64-bit cell
/// compare is the whole access.
double run_read_shared_packed(std::uint32_t threads, std::uint32_t scale) {
  RaceCollector races;
  rt::Runtime<VftV2> R{VftV2(&races)};
  rt::Runtime<VftV2>::MainScope scope(R);
  const std::size_t reps = reps_for(scale);
  std::vector<std::uint64_t> table(kEntries, 3);
  auto& pspace = R.packed_space();
  for (const std::uint64_t& w : table) {
    rt::instrumented_write(R, pspace, &w);
  }
  const auto t0 = std::chrono::steady_clock::now();
  rt::parallel_for_threads(R, threads, [&](std::uint32_t) {
    std::uint64_t acc = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      for (std::size_t i = 0; i < kEntries; ++i) {
        acc += rt::instrumented_read(R, pspace, &table[i]);
      }
    }
    benchmark_keep(acc);
  });
  const auto t1 = std::chrono::steady_clock::now();
  VFT_CHECK(races.empty());
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Mode `abi`: the same sweep through vft_read8 on the process-global
/// session - TLS descriptor, inline same-epoch path, devirtualized slow
/// dispatch, reentrancy guard: the whole per-access interposition stack.
/// Children are forked through the ABI token protocol so their reads are
/// ordered after the parent's publishing writes (race-free).
double run_read_shared_abi(std::uint32_t threads, std::uint32_t scale) {
  namespace amb = rt::ambient;
  amb::Session::instance().configure("v2");
  amb::Session::instance().reset();
  const std::size_t reps = reps_for(scale);
  std::vector<std::uint64_t> table(kEntries, 3);
  vft_attach();
  for (const std::uint64_t& w : table) vft_write8(&w);

  std::vector<std::uint64_t> toks(threads);
  for (auto& tk : toks) tk = vft_thread_create();
  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      vft_thread_begin(toks[t]);
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) {
      }
      std::uint64_t acc = 0;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        for (std::size_t i = 0; i < kEntries; ++i) {
          vft_read8(&table[i]);
          acc += i;
        }
      }
      benchmark_keep(acc);
      vft_detach();
    });
  }
  while (ready.load(std::memory_order_acquire) < threads) {
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const auto t1 = std::chrono::steady_clock::now();
  for (const std::uint64_t tk : toks) vft_thread_join(tk);
  VFT_CHECK(vft_race_count() == 0);
  vft_detach();
  amb::Session::instance().reset();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const BenchConfig bc = BenchConfig::from_env();
  JsonReport report("scaling");
  report.context("scale", std::to_string(bc.scale));
  std::printf("Read-shared scaling: T threads re-reading one shared table "
              "(ns/access; scale=%u)\n\n", bc.scale);
  std::printf("%8s %10s %10s %10s %10s %10s %10s %10s %10s\n", "threads",
              "none", "v1", "v1.5", "v2", "FT-Mutex", "FT-CAS", "packed",
              "abi");
  for (const std::uint32_t t : {1u, 2u, 4u, 8u}) {
    const double n0 = run_read_shared<rt::NullTool>(t, bc.scale);
    const double v1 = run_read_shared<VftV1>(t, bc.scale);
    const double v15 = run_read_shared<VftV15>(t, bc.scale);
    const double v2 = run_read_shared<VftV2>(t, bc.scale);
    const double fm = run_read_shared<FtMutex>(t, bc.scale);
    const double fc = run_read_shared<FtCas>(t, bc.scale);
    const double pk = run_read_shared_packed(t, bc.scale);
    const double ab = run_read_shared_abi(t, bc.scale);
    std::printf("%8u %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f "
                "%10.2f\n",
                t, ns_access(n0, bc.scale), ns_access(v1, bc.scale),
                ns_access(v15, bc.scale), ns_access(v2, bc.scale),
                ns_access(fm, bc.scale), ns_access(fc, bc.scale),
                ns_access(pk, bc.scale), ns_access(ab, bc.scale));
    report.add("read_shared_seconds", "threads_" + std::to_string(t),
               {{"threads", static_cast<double>(t)},
                {"none", n0},
                {"v1", v1},
                {"v15", v15},
                {"v2", v2},
                {"ft_mutex", fm},
                {"ft_cas", fc},
                {"packed", pk},
                {"abi", ab}});
    report.add("read_shared_ns_access", "threads_" + std::to_string(t),
               {{"threads", static_cast<double>(t)},
                {"none", ns_access(n0, bc.scale)},
                {"v1", ns_access(v1, bc.scale)},
                {"v15", ns_access(v15, bc.scale)},
                {"v2", ns_access(v2, bc.scale)},
                {"ft_mutex", ns_access(fm, bc.scale)},
                {"ft_cas", ns_access(fc, bc.scale)},
                {"packed", ns_access(pk, bc.scale)},
                {"abi", ns_access(ab, bc.scale)}});
  }
  report.write("BENCH_scaling.json");
  std::printf("\nexpectation: v1/v1.5 pay a lock per read (and serialize "
              "under real parallelism); v2/FT-CAS stay near the base "
              "line's slope; `packed` is the out-of-line fast-path floor "
              "and `abi` the full interposition stack chasing it\n");
  return 0;
}
