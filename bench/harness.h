// Shared measurement harness for the table benches, mirroring the paper's
// methodology (Section 8): run the target's workload in a warm-up phase,
// then measure repeated iterations and report
//
//   overhead = (CheckerTime - BaseTime) / BaseTime.
//
// Defaults are sized for a small container; environment variables scale
// them up to paper-like runs:
//   VFT_BENCH_THREADS (default 4; the paper used 16 on a 16-core box)
//   VFT_BENCH_SCALE   (default 2)
//   VFT_BENCH_ITERS   (default 3 measured iterations; paper used 10)
//   VFT_BENCH_WARMUP  (default 1)
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "kernels/all.h"

namespace vft::bench {

/// Machine-readable benchmark output: a flat list of records, each a
/// section + name + numeric metrics, serialized as pretty-printed JSON.
/// Benches write BENCH_<name>.json next to their stdout tables so every
/// PR records the performance trajectory (ISSUE 2); CI uploads the files
/// as artifacts. Hand-rolled writer: no JSON dependency in the image.
class JsonReport {
 public:
  explicit JsonReport(std::string benchmark)
      : benchmark_(std::move(benchmark)) {}

  /// Attach a top-level context value (thread count, scale, ISA, ...).
  void context(const std::string& key, const std::string& value) {
    context_.emplace_back(key, value);
  }

  void add(const std::string& section, const std::string& name,
           std::vector<std::pair<std::string, double>> metrics) {
    records_.push_back(Record{section, name, std::move(metrics)});
  }

  /// Serialize to `path` (or $VFT_BENCH_JSON when set). Returns success.
  bool write(const std::string& path) const {
    const char* env = std::getenv("VFT_BENCH_JSON");
    const std::string target = env != nullptr ? env : path;
    std::FILE* f = std::fopen(target.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot open %s\n", target.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n", benchmark_.c_str());
    for (const auto& [k, v] : context_) {
      std::fprintf(f, "  \"%s\": \"%s\",\n", k.c_str(), v.c_str());
    }
    std::fprintf(f, "  \"records\": [\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f, "    {\"section\": \"%s\", \"name\": \"%s\"",
                   r.section.c_str(), r.name.c_str());
      for (const auto& [k, v] : r.metrics) {
        std::fprintf(f, ", \"%s\": %.6g", k.c_str(), v);
      }
      std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", target.c_str(), records_.size());
    return true;
  }

 private:
  struct Record {
    std::string section;
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };

  std::string benchmark_;
  std::vector<std::pair<std::string, std::string>> context_;
  std::vector<Record> records_;
};

struct BenchConfig {
  std::uint32_t threads = 4;
  std::uint32_t scale = 2;
  int iters = 3;
  int warmup = 1;

  static BenchConfig from_env() {
    BenchConfig cfg;
    if (const char* v = std::getenv("VFT_BENCH_THREADS")) {
      cfg.threads = static_cast<std::uint32_t>(std::atoi(v));
    }
    if (const char* v = std::getenv("VFT_BENCH_SCALE")) {
      cfg.scale = static_cast<std::uint32_t>(std::atoi(v));
    }
    if (const char* v = std::getenv("VFT_BENCH_ITERS")) {
      cfg.iters = std::atoi(v);
    }
    if (const char* v = std::getenv("VFT_BENCH_WARMUP")) {
      cfg.warmup = std::atoi(v);
    }
    return cfg;
  }
};

/// Per-iteration timing summary. `spread` is half the min-max range: the
/// tables print "mean ± spread" so a reader (and EXPERIMENTS.md) can judge
/// whether an overhead delta is inside the run-to-run noise.
struct TimeStats {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;

  double spread() const { return (max - min) / 2.0; }
};

/// Times `iters` runs of one kernel under tool D, each iteration timed
/// separately. One validated warm-up run checks the kernel's output and
/// race-freedom; timed runs skip validation so uninstrumented checking
/// work cannot dilute the ratios.
template <Detector D, typename... ToolArgs>
TimeStats time_kernel_stats(kernels::KernelFn<D> fn, const BenchConfig& bc,
                            const char* name, ToolArgs&&... tool_args) {
  kernels::KernelConfig cfg;
  cfg.threads = bc.threads;
  cfg.scale = bc.scale;

  for (int w = 0; w < bc.warmup; ++w) {
    cfg.validate = (w == 0);
    auto [result, races] = kernels::run_kernel<D>(
        fn, cfg, std::forward<ToolArgs>(tool_args)...);
    if (w == 0 && (!result.valid || races != 0)) {
      std::fprintf(stderr, "FATAL: %s invalid under %s (valid=%d races=%zu)\n",
                   name, D::kName, result.valid ? 1 : 0, races);
      std::exit(1);
    }
  }

  cfg.validate = false;
  TimeStats stats;
  for (int i = 0; i < bc.iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    {
      RaceCollector races;
      rt::Runtime<D> R(D(&races, std::forward<ToolArgs>(tool_args)...));
      typename rt::Runtime<D>::MainScope scope(R);
      fn(R, cfg);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(t1 - t0).count();
    stats.mean += dt;
    stats.min = (i == 0) ? dt : std::min(stats.min, dt);
    stats.max = (i == 0) ? dt : std::max(stats.max, dt);
  }
  stats.mean /= bc.iters > 0 ? bc.iters : 1;
  return stats;
}

/// Mean seconds per run (the original interface; stats discarded).
template <Detector D, typename... ToolArgs>
double time_kernel(kernels::KernelFn<D> fn, const BenchConfig& bc,
                   const char* name, ToolArgs&&... tool_args) {
  return time_kernel_stats<D>(fn, bc, name,
                              std::forward<ToolArgs>(tool_args)...)
      .mean;
}

inline double geomean(const std::vector<double>& xs) {
  double log_sum = 0.0;
  for (const double x : xs) log_sum += std::log(x);
  return xs.empty() ? 0.0 : std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace vft::bench
