// Shared measurement harness for the table benches, mirroring the paper's
// methodology (Section 8): run the target's workload in a warm-up phase,
// then measure repeated iterations and report
//
//   overhead = (CheckerTime - BaseTime) / BaseTime.
//
// Defaults are sized for a small container; environment variables scale
// them up to paper-like runs:
//   VFT_BENCH_THREADS (default 4; the paper used 16 on a 16-core box)
//   VFT_BENCH_SCALE   (default 2)
//   VFT_BENCH_ITERS   (default 3 measured iterations; paper used 10)
//   VFT_BENCH_WARMUP  (default 1)
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "kernels/all.h"

namespace vft::bench {

struct BenchConfig {
  std::uint32_t threads = 4;
  std::uint32_t scale = 2;
  int iters = 3;
  int warmup = 1;

  static BenchConfig from_env() {
    BenchConfig cfg;
    if (const char* v = std::getenv("VFT_BENCH_THREADS")) {
      cfg.threads = static_cast<std::uint32_t>(std::atoi(v));
    }
    if (const char* v = std::getenv("VFT_BENCH_SCALE")) {
      cfg.scale = static_cast<std::uint32_t>(std::atoi(v));
    }
    if (const char* v = std::getenv("VFT_BENCH_ITERS")) {
      cfg.iters = std::atoi(v);
    }
    if (const char* v = std::getenv("VFT_BENCH_WARMUP")) {
      cfg.warmup = std::atoi(v);
    }
    return cfg;
  }
};

/// Times `iters` runs of one kernel under tool D and returns the mean
/// seconds per run. One validated warm-up run checks the kernel's output
/// and race-freedom; timed runs skip validation so uninstrumented checking
/// work cannot dilute the ratios.
template <Detector D, typename... ToolArgs>
double time_kernel(kernels::KernelFn<D> fn, const BenchConfig& bc,
                   const char* name, ToolArgs&&... tool_args) {
  kernels::KernelConfig cfg;
  cfg.threads = bc.threads;
  cfg.scale = bc.scale;

  for (int w = 0; w < bc.warmup; ++w) {
    cfg.validate = (w == 0);
    auto [result, races] = kernels::run_kernel<D>(
        fn, cfg, std::forward<ToolArgs>(tool_args)...);
    if (w == 0 && (!result.valid || races != 0)) {
      std::fprintf(stderr, "FATAL: %s invalid under %s (valid=%d races=%zu)\n",
                   name, D::kName, result.valid ? 1 : 0, races);
      std::exit(1);
    }
  }

  cfg.validate = false;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < bc.iters; ++i) {
    RaceCollector races;
    rt::Runtime<D> R(D(&races, std::forward<ToolArgs>(tool_args)...));
    typename rt::Runtime<D>::MainScope scope(R);
    fn(R, cfg);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() / bc.iters;
}

inline double geomean(const std::vector<double>& xs) {
  double log_sum = 0.0;
  for (const double x : xs) log_sum += std::log(x);
  return xs.empty() ? 0.0 : std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace vft::bench
