// Experiment E2: regenerate Figure 1 - the worked example of the
// VerifiedFT analysis state evolving over a six-operation window of a
// trace of threads A and B, ending in a [Shared-Write Race].
//
// The preamble drives the clocks to the figure's first row (A@4, B@8,
// R = W = A@1, A holding m); the six displayed operations then print one
// state row each, matching the figure column for column.
#include <cstdio>
#include <string>

#include "vft/spec.h"

int main() {
  using namespace vft;
  constexpr Tid A = 0, B = 1;
  constexpr VarId x = 0;
  constexpr LockId m = 0;

  Spec spec;
  // Preamble (before the figure's window): A accesses x at A@1, clocks
  // advance to A@4 / B@8 via lock operations, A acquires m.
  spec.on_write(A, x);
  spec.on_read(A, x);
  for (int i = 0; i < 3; ++i) {
    spec.on_acquire(A, 90);
    spec.on_release(A, 90);
  }
  for (int i = 0; i < 7; ++i) {
    spec.on_acquire(B, 91);
    spec.on_release(B, 91);
  }
  spec.on_acquire(A, m);

  auto cell = [](const VectorClock& vc) {
    return "<" + std::to_string(vc.get(0).clock()) + "," +
           std::to_string(vc.get(1).clock()) + ">";
  };
  auto row = [&](const char* op) {
    std::printf("%-12s %-8s %-8s %-8s %-8s %-8s %-8s\n", op,
                cell(spec.thread_vc(A)).c_str(), cell(spec.thread_vc(B)).c_str(),
                cell(spec.lock_vc(m)).c_str(), cell(spec.var(x).V).c_str(),
                spec.var(x).R.str().c_str(), spec.var(x).W.str().c_str());
  };

  std::printf("Figure 1 reproduction: VerifiedFT analysis state\n\n");
  std::printf("%-12s %-8s %-8s %-8s %-8s %-8s %-8s\n", "op", "SA.V", "SB.V",
              "Sm.V", "Sx.V", "Sx.R", "Sx.W");
  row("(initial)");
  spec.on_write(A, x);
  row("A: x=0");
  spec.on_release(A, m);
  row("A: rel(m)");
  spec.on_acquire(B, m);
  row("B: acq(m)");
  spec.on_read(B, x);
  row("B: s=x");
  spec.on_read(A, x);
  row("A: t=x");
  const auto res = spec.on_write(A, x);
  std::printf("%-12s %s\n", "A: x=1",
              res.error ? "==> Race! ([Shared-Write Race], as in the paper)"
                        : "no race (MISMATCH with the paper!)");
  return res.error ? 0 : 1;
}
