// Experiments E4/E5/E6: ablations over the design decisions Section 3 and
// Section 8 call out.
//
//   E4  Fast-path unlocking steps: v1 -> v1.5 -> v2 geomeans over the
//       kernel suite (reported per-kernel in bench_table1; here reported
//       as aggregate deltas for the ablation narrative).
//   E5  The original FastTrack [Write Shared] R-reset: measured on a
//       synthetic thrash pattern (read-shared phase, ordered write, read-
//       shared phase, ...) where the reset forces repeated re-inflation
//       of the read vector clock. VerifiedFT's rules keep R = SHARED and
//       avoid the thrash.
//   E6  FT-Mutex / FT-CAS with the revised VerifiedFT rules: Section 8
//       notes this "does not meaningfully improve their performance" -
//       the win comes from v2's discipline, not from the rules alone.
#include "harness.h"

namespace {

using namespace vft;
using namespace vft::bench;
using namespace vft::kernels;

// E5 workload: threads repeatedly read a small shared table; between
// phases, one thread (that has synchronized with every reader via a
// barrier) writes each entry. Under the original rules each write resets
// R, so the next phase's reads re-inflate SHARED via the locked slow path
// over and over; under the VerifiedFT rules the entries stay SHARED and
// re-reads hit the lock-free fast path.
template <Detector D>
KernelResult thrash(rt::Runtime<D>& R, const KernelConfig& cfg) {
  const std::size_t entries = 64;
  const std::size_t phases = 60 * cfg.scale;
  const std::size_t reps = 12;
  rt::Array<std::uint64_t, D> table(R, entries, 1);
  rt::Barrier<D> barrier(R, cfg.threads);
  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    std::uint64_t acc = 0;
    for (std::size_t p = 0; p < phases; ++p) {
      for (std::size_t rep = 0; rep < reps; ++rep) {
        for (std::size_t i = 0; i < entries; ++i) acc += table.load(i);
      }
      barrier.arrive_and_wait();
      if (w == p % cfg.threads) {  // one ordered writer per phase
        for (std::size_t i = 0; i < entries; ++i) {
          table.store(i, table.load(i) + 1);
        }
      }
      barrier.arrive_and_wait();
    }
    (void)acc;
  });
  double checksum = 0.0;
  for (std::size_t i = 0; i < entries; ++i) {
    checksum += static_cast<double>(table.raw(i));
  }
  const bool valid =
      table.raw(0) == 1 + phases;  // every phase increments once
  return KernelResult{checksum, valid};
}

}  // namespace

int main() {
  const BenchConfig bc = BenchConfig::from_env();
  std::printf("Ablation benches (threads=%u scale=%u iters=%d)\n\n",
              bc.threads, bc.scale, bc.iters);

  // ---- E5: [Write Shared] R-reset thrash ----
  std::printf("E5: [Write Shared] read-history reset (thrash pattern)\n");
  {
    const double base = time_kernel<rt::NullTool>(&thrash<rt::NullTool>, bc,
                                                  "thrash");
    auto oh = [base](double t) { return (t - base) / base; };
    const double orig_mutex =
        oh(time_kernel<FtMutex>(&thrash<FtMutex>, bc, "thrash", nullptr,
                                RuleSet::kOriginalFastTrack));
    const double revised_mutex =
        oh(time_kernel<FtMutex>(&thrash<FtMutex>, bc, "thrash", nullptr,
                                RuleSet::kVerifiedFT));
    const double v2 = oh(time_kernel<VftV2>(&thrash<VftV2>, bc, "thrash"));
    std::printf("  base %.4fs | FT-Mutex(original rules) %.2fx | "
                "FT-Mutex(revised rules) %.2fx | v2 %.2fx\n",
                base, orig_mutex, revised_mutex, v2);
    std::printf("  expectation: original rules pay re-inflation on every "
                "phase; revised rules and v2 stay on the fast path\n\n");
  }

  // ---- E6: revised rules on the historical implementations ----
  std::printf("E6: FT-Mutex/FT-CAS with original vs revised rules "
              "(geomean over the kernel suite)\n");
  {
    std::vector<double> om, rm, oc, rc2;
    const auto tm = kernel_table<FtMutex>();
    const auto tc = kernel_table<FtCas>();
    const auto tn = kernel_table<rt::NullTool>();
    for (std::size_t k = 0; k < tn.size(); ++k) {
      const double base = time_kernel<rt::NullTool>(tn[k].fn, bc, tn[k].name);
      auto oh = [base](double t) { return std::max((t - base) / base, 0.01); };
      om.push_back(oh(time_kernel<FtMutex>(
          tm[k].fn, bc, tm[k].name, nullptr, RuleSet::kOriginalFastTrack)));
      rm.push_back(oh(time_kernel<FtMutex>(
          tm[k].fn, bc, tm[k].name, nullptr, RuleSet::kVerifiedFT)));
      oc.push_back(oh(time_kernel<FtCas>(
          tc[k].fn, bc, tc[k].name, nullptr, RuleSet::kOriginalFastTrack)));
      rc2.push_back(oh(time_kernel<FtCas>(
          tc[k].fn, bc, tc[k].name, nullptr, RuleSet::kVerifiedFT)));
    }
    std::printf("  FT-Mutex: original %.2fx, revised %.2fx\n", geomean(om),
                geomean(rm));
    std::printf("  FT-CAS:   original %.2fx, revised %.2fx\n", geomean(oc),
                geomean(rc2));
    std::printf("  expectation (Section 8): revised rules do not "
                "meaningfully change either\n\n");
  }

  // ---- E4 aggregate: what each unlocking step buys ----
  std::printf("E4: fast-path unlocking steps (geomean over the suite)\n");
  {
    std::vector<double> v1s, v15s, v2s;
    const auto t1 = kernel_table<VftV1>();
    const auto t15 = kernel_table<VftV15>();
    const auto t2 = kernel_table<VftV2>();
    const auto tn = kernel_table<rt::NullTool>();
    for (std::size_t k = 0; k < tn.size(); ++k) {
      const double base = time_kernel<rt::NullTool>(tn[k].fn, bc, tn[k].name);
      auto oh = [base](double t) { return std::max((t - base) / base, 0.01); };
      v1s.push_back(oh(time_kernel<VftV1>(t1[k].fn, bc, t1[k].name)));
      v15s.push_back(oh(time_kernel<VftV15>(t15[k].fn, bc, t15[k].name)));
      v2s.push_back(oh(time_kernel<VftV2>(t2[k].fn, bc, t2[k].name)));
    }
    std::printf("  v1 %.2fx -> v1.5 %.2fx (unlock [Read/Write Same Epoch]) "
                "-> v2 %.2fx (also unlock [ReadShared Same Epoch])\n",
                geomean(v1s), geomean(v15s), geomean(v2s));
    std::printf("  paper: 15.0x -> 10.8x -> 8.12x\n");
  }
  return 0;
}
