// Experiment E3: the Section 5 access-mix claim. The paper motivates
// VerifiedFT-v2's three lock-free rules with their measured frequency:
// [Read Same Epoch] 60%, [Write Same Epoch] 14%, [Read Shared Same Epoch]
// 12% - together ~85% of all accesses. This bench runs the kernel suite
// under VerifiedFT-v2 with rule counting enabled and prints the same
// distribution, per kernel and aggregated.
#include <array>

#include "harness.h"

int main() {
  using namespace vft;
  using namespace vft::bench;
  using namespace vft::kernels;

  const BenchConfig bc = BenchConfig::from_env();
  std::printf("Rule-frequency distribution under VerifiedFT-v2 "
              "(threads=%u scale=%u)\n\n", bc.threads, bc.scale);
  std::printf("%-12s %9s %9s %9s %9s | %9s\n", "program", "rd-same",
              "wr-same", "rdsh-same", "other", "fastpath%");
  std::printf("%s\n", std::string(66, '-').c_str());

  std::array<std::uint64_t, RuleStats::kN> agg{};
  for (const auto& e : kernel_table<VftV2>()) {
    RaceCollector races;
    RuleStats stats;
    rt::Runtime<VftV2> R(VftV2(&races, &stats));
    rt::Runtime<VftV2>::MainScope scope(R);
    KernelConfig cfg;
    cfg.threads = bc.threads;
    cfg.scale = bc.scale;
    e.fn(R, cfg);

    const std::uint64_t all = stats.total_accesses();
    const std::uint64_t rs = stats.count(Rule::kReadSameEpoch);
    const std::uint64_t ws = stats.count(Rule::kWriteSameEpoch);
    const std::uint64_t rss = stats.count(Rule::kReadSharedSameEpoch);
    auto pct = [all](std::uint64_t n) {
      return all == 0 ? 0.0 : 100.0 * static_cast<double>(n) /
                                  static_cast<double>(all);
    };
    std::printf("%-12s %8.1f%% %8.1f%% %8.1f%% %8.1f%% | %8.1f%%\n", e.name,
                pct(rs), pct(ws), pct(rss), pct(all - rs - ws - rss),
                pct(rs + ws + rss));
    for (std::size_t r = 0; r < RuleStats::kN; ++r) {
      agg[r] += stats.count(static_cast<Rule>(r));
    }
  }

  std::uint64_t all = 0;
  for (std::size_t r = 0; r <= static_cast<std::size_t>(Rule::kSharedWriteRace);
       ++r) {
    all += agg[r];
  }
  auto apct = [all](std::uint64_t n) {
    return all == 0 ? 0.0
                    : 100.0 * static_cast<double>(n) / static_cast<double>(all);
  };
  const std::uint64_t a_rs = agg[static_cast<std::size_t>(Rule::kReadSameEpoch)];
  const std::uint64_t a_ws = agg[static_cast<std::size_t>(Rule::kWriteSameEpoch)];
  const std::uint64_t a_rss =
      agg[static_cast<std::size_t>(Rule::kReadSharedSameEpoch)];
  std::printf("%s\n", std::string(66, '-').c_str());
  std::printf("%-12s %8.1f%% %8.1f%% %8.1f%% %8.1f%% | %8.1f%%\n", "aggregate",
              apct(a_rs), apct(a_ws), apct(a_rss),
              apct(all - a_rs - a_ws - a_rss), apct(a_rs + a_ws + a_rss));
  std::printf("\npaper (Section 5): rd-same 60%%, wr-same 14%%, rdsh-same "
              "12%% => 85%%+ fast-path coverage\n");

  auto ag = [&agg](Rule r) {
    return static_cast<unsigned long long>(agg[static_cast<std::size_t>(r)]);
  };
  std::printf("\nSync operations (incl. the Section 7 extras):\n"
              "  acquire=%llu release=%llu fork=%llu join=%llu\n"
              "  volatile-rd=%llu volatile-wr=%llu barrier=%llu\n",
              ag(Rule::kAcquire), ag(Rule::kRelease), ag(Rule::kFork),
              ag(Rule::kJoin), ag(Rule::kVolRead), ag(Rule::kVolWrite),
              ag(Rule::kBarrier));

  std::printf("\nFull aggregate rule breakdown:\n");
  for (std::size_t r = 0; r < RuleStats::kN; ++r) {
    if (agg[r] == 0) continue;
    std::printf("  %-28s %12llu\n", rule_name(static_cast<Rule>(r)),
                static_cast<unsigned long long>(agg[r]));
  }

  // Second pass, ISSUE-3: the same suite with the packed-cell shadow
  // backend, reporting how much of the access stream the inlined fast
  // path absorbed before the detector was ever called. Only kernels
  // ported to the address-keyed shadow API honor the backend; the others
  // run unpacked and contribute zero fast-path events (their rows make
  // the coverage denominator honest).
  std::printf("\nPacked-cell fast path (shadow=packed; hit/miss/spill as %% "
              "of accesses)\n\n");
  std::printf("%-12s %10s %10s %10s %10s | %9s\n", "program", "rd-hit",
              "wr-hit", "miss", "spills", "inline%");
  std::printf("%s\n", std::string(70, '-').c_str());
  std::array<std::uint64_t, RuleStats::kN> pagg{};
  for (const auto& e : kernel_table<VftV2>()) {
    RaceCollector races;
    RuleStats stats;
    rt::Runtime<VftV2> R(VftV2(&races, &stats));
    rt::Runtime<VftV2>::MainScope scope(R);
    KernelConfig cfg;
    cfg.threads = bc.threads;
    cfg.scale = bc.scale;
    cfg.shadow = ShadowBackend::kPacked;
    e.fn(R, cfg);

    const std::uint64_t all = stats.total_accesses();
    const std::uint64_t rh = stats.count(Rule::kFastReadHit);
    const std::uint64_t wh = stats.count(Rule::kFastWriteHit);
    const std::uint64_t miss = stats.count(Rule::kFastMiss);
    const std::uint64_t spill = stats.count(Rule::kFastSpill);
    auto pct = [all](std::uint64_t n) {
      return all == 0 ? 0.0 : 100.0 * static_cast<double>(n) /
                                  static_cast<double>(all);
    };
    std::printf("%-12s %9.1f%% %9.1f%% %9.1f%% %10llu | %8.1f%%\n", e.name,
                pct(rh), pct(wh), pct(miss),
                static_cast<unsigned long long>(spill), pct(rh + wh));
    for (std::size_t r = 0; r < RuleStats::kN; ++r) {
      pagg[r] += stats.count(static_cast<Rule>(r));
    }
  }
  std::uint64_t pall = 0;
  for (std::size_t r = 0;
       r <= static_cast<std::size_t>(Rule::kSharedWriteRace); ++r) {
    pall += pagg[r];
  }
  auto pg = [&pagg](Rule r) { return pagg[static_cast<std::size_t>(r)]; };
  auto ppct = [pall](std::uint64_t n) {
    return pall == 0 ? 0.0 : 100.0 * static_cast<double>(n) /
                                 static_cast<double>(pall);
  };
  std::printf("%s\n", std::string(70, '-').c_str());
  std::printf("%-12s %9.1f%% %9.1f%% %9.1f%% %10llu | %8.1f%%\n", "aggregate",
              ppct(pg(Rule::kFastReadHit)), ppct(pg(Rule::kFastWriteHit)),
              ppct(pg(Rule::kFastMiss)),
              static_cast<unsigned long long>(pg(Rule::kFastSpill)),
              ppct(pg(Rule::kFastReadHit) + pg(Rule::kFastWriteHit)));
  std::printf("\ncompare with the paper's same-epoch percentages above: every "
              "fast hit is an access the detector never saw.\n");
  return 0;
}
