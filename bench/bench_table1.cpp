// Experiment E1: Table 1 of the paper - base running time per program and
// checking overhead (x base) for FT-Mutex, FT-CAS, VerifiedFT-v1, -v1.5,
// and -v2, with the geometric-mean row.
//
// The workloads are the kernel analogues of DESIGN.md 1.4 (JavaGrande
// block first, then the DaCapo block, as in the paper). Absolute numbers
// differ from the paper (native C++ base, source-level instrumentation,
// single-core container); the claims under reproduction are the *shape*:
//   - v1 slowest of the VerifiedFT family, v1.5 in between, v2 fastest;
//   - v2 as fast as or faster than FT-Mutex and comparable to FT-CAS;
//   - series ~zero overhead; read-shared-heavy kernels (sparse,
//     raytracer) showing the largest v1 -> v2 recovery.
#include "harness.h"

int main() {
  using namespace vft;
  using namespace vft::bench;
  using namespace vft::kernels;

  const BenchConfig bc = BenchConfig::from_env();
  JsonReport report("table1");
  report.context("threads", std::to_string(bc.threads));
  report.context("scale", std::to_string(bc.scale));
  report.context("iters", std::to_string(bc.iters));
  std::printf(
      "Table 1 reproduction: overhead (x base) per program\n"
      "threads=%u scale=%u iters=%d (VFT_BENCH_* env vars rescale)\n"
      "base column is mean +/- half the min-max spread across iterations;\n"
      "overheads are clamped at 0 (a checker cannot beat its own base -\n"
      "negative readings are timer noise on short kernels).\n\n",
      bc.threads, bc.scale, bc.iters);
  std::printf("%-12s %16s | %8s %8s | %8s %8s %8s\n", "program",
              "base(s)+/-spread", "FT-Mutex", "FT-CAS", "v1", "v1.5", "v2");
  std::printf("%s\n", std::string(78, '-').c_str());

  std::vector<double> o_mutex, o_cas, o_v1, o_v15, o_v2;
  const auto table_none = kernel_table<rt::NullTool>();
  const auto table_mutex = kernel_table<FtMutex>();
  const auto table_cas = kernel_table<FtCas>();
  const auto table_v1 = kernel_table<VftV1>();
  const auto table_v15 = kernel_table<VftV15>();
  const auto table_v2 = kernel_table<VftV2>();

  for (std::size_t k = 0; k < table_none.size(); ++k) {
    const char* name = table_none[k].name;
    const TimeStats base =
        time_kernel_stats<rt::NullTool>(table_none[k].fn, bc, name);
    // Clamp at 0: instrumentation cannot make the kernel faster than its
    // uninstrumented base, so a negative reading is measurement noise
    // (short kernel, shared machine) and would poison the geomean.
    auto overhead = [&base](double t) {
      return std::max(0.0, (t - base.mean) / base.mean);
    };
    const double m = overhead(time_kernel<FtMutex>(table_mutex[k].fn, bc, name));
    const double c = overhead(time_kernel<FtCas>(table_cas[k].fn, bc, name));
    const double v1 = overhead(time_kernel<VftV1>(table_v1[k].fn, bc, name));
    const double v15 = overhead(time_kernel<VftV15>(table_v15[k].fn, bc, name));
    const double v2 = overhead(time_kernel<VftV2>(table_v2[k].fn, bc, name));
    std::printf("%-12s %8.4f+/-%5.4f | %8.2f %8.2f | %8.2f %8.2f %8.2f\n",
                name, base.mean, base.spread(), m, c, v1, v15, v2);
    report.add("overhead", name,
               {{"base_s", base.mean},
                {"base_spread_s", base.spread()},
                {"ft_mutex", m},
                {"ft_cas", c},
                {"v1", v1},
                {"v15", v15},
                {"v2", v2}});
    // Guard the geomean against ~zero-overhead entries (series) exactly as
    // one must when reproducing the paper's geomean: clamp at 0.01x.
    auto clamp = [](double x) { return std::max(x, 0.01); };
    o_mutex.push_back(clamp(m));
    o_cas.push_back(clamp(c));
    o_v1.push_back(clamp(v1));
    o_v15.push_back(clamp(v15));
    o_v2.push_back(clamp(v2));
  }

  std::printf("%s\n", std::string(78, '-').c_str());
  std::printf("%-12s %16s | %8.2f %8.2f | %8.2f %8.2f %8.2f\n", "geomean", "",
              geomean(o_mutex), geomean(o_cas), geomean(o_v1), geomean(o_v15),
              geomean(o_v2));
  std::printf(
      "\npaper (16 threads, 16 cores): Mutex 8.87, CAS 8.11, v1 15.0, "
      "v1.5 10.8, v2 8.12\n");
  report.add("geomean", "all",
             {{"ft_mutex", geomean(o_mutex)},
              {"ft_cas", geomean(o_cas)},
              {"v1", geomean(o_v1)},
              {"v15", geomean(o_v15)},
              {"v2", geomean(o_v2)}});
  report.write("BENCH_table1.json");
  return 0;
}
