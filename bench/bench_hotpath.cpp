// Experiment E13: per-access hot-path microbenchmarks for the ISSUE-2
// optimisations, with machine-readable output (BENCH_hotpath.json).
//
// Sections:
//   vc_leq / vc_join  per-ISA vector-clock kernel cost (ns/op) across
//                     clock sizes straddling the inline capacity, plus
//                     the speedup of each SIMD variant over scalar on the
//                     same inputs. Acceptance: AVX2 >= 1.5x scalar on the
//                     64-slot join/leq rows.
//   shadow_cache      ShadowSpace::of() (thread-local page cache) vs
//                     of_uncached() (hash + chain walk every lookup) on a
//                     sequential sweep, 1..max threads, at both a
//                     cache-resident and a >= 4 MiB-shadow working set.
//   packed_cell       ISSUE-3 A/B: same-epoch sweeps through the packed
//                     64-bit cell fast path vs the ShadowSpace + detector
//                     call path, small and >= 4 MiB-shadow working sets.
//                     Acceptance: packed read >= 3x on the large sweep.
//   abi_dispatch      vft_read8 through the C ABI (TLS session lookup +
//                     reentrancy guard + SessionBackend vtable) vs the
//                     inlined wrapper path reaching the same tool handler;
//                     the delta is the per-access interposition tax.
//   report_ctx        ISSUE-6 A/B: the same vft_read8 sweep with the
//                     stack-capture event context armed per access (the
//                     two TLS stores every __tsan_* wrapper pays) vs left
//                     unarmed, interleaved in alternating blocks with the
//                     per-mode spread reported. Stack walking fires only
//                     when a race does, so the race-free delta must be
//                     within the spread (acceptance: the hook adds no
//                     measurable fast-path cost).
//   sampling          ISSUE-7: sampled-out access cost through vft_read8
//                     under policy=drop (ABI-gate skip) and policy=cell
//                     (packed-cell fast path only) at a 1/4096 fixed
//                     rate, vs the exact path; plus the target-overhead
//                     controller's settling point under VFT_BUDGET=5.
//   history           ISSUE-10 A/B: the bounded access-history ring on the
//                     detector slow path ([Write Exclusive] traffic: epoch
//                     bumped every sweep so every access records a ring
//                     entry) vs the same traffic with the ring uninstalled,
//                     plus a same-epoch row where the fast path must never
//                     touch the ring (pinned by check_bench_floor.sh).
//   range_memcpy      interposed bulk copy: vft_range_read + vft_range_write
//                     (the mem* wrappers' SIMD packed-cell prefix kernel)
//                     plus the real memcpy, vs the raw copy alone, on warm
//                     race-free pages. Acceptance: within 3x of raw.
//   volatile_load     rt::Volatile load with the same-epoch fast path on
//                     vs off (always-locked join), 1..max threads hammering
//                     one volatile after a single publication.
//   barrier_phase     arrive_and_wait cost per phase (trajectory metric;
//                     pre-sized clocks keep the phase flip allocation-free).
//
// Environment: VFT_HOTPATH_MAXTHREADS (default 8), VFT_HOTPATH_SCALE
// (default 1; multiplies every rep count), VFT_BENCH_JSON (output path,
// default BENCH_hotpath.json in the working directory).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "abi/vft_abi.h"
#include "harness.h"
#include "kernels/kernel.h"
#include "runtime/session.h"

namespace {

using namespace vft;
using bench::JsonReport;

std::size_t env_or(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    return static_cast<std::size_t>(std::atoll(v));
  }
  return fallback;
}

double now_minus(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Keep results observable so the measured loops cannot be elided. The
// kernels live in another TU, but the sink also guards the lookup loops.
std::atomic<std::uint64_t> g_sink{0};

// ---------------------------------------------------------------------------
// Section 1: vector-clock kernels, per ISA.
// ---------------------------------------------------------------------------

/// A well-formed-looking slot array: tid bits ascending, clock bits `c`.
std::vector<std::uint32_t> make_slots(std::size_t n, std::uint32_t c) {
  std::vector<std::uint32_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = (static_cast<std::uint32_t>(i & 0xff) << Epoch::kClockBits) |
           (c & ((1u << Epoch::kClockBits) - 1));
  }
  return v;
}

struct IsaFns {
  simd::Isa isa;
  bool (*leq)(const std::uint32_t*, const std::uint32_t*, std::size_t);
  void (*join)(std::uint32_t*, const std::uint32_t*, std::size_t);
};

void vc_kernel_section(JsonReport& json, std::size_t scale) {
  const IsaFns variants[] = {
      {simd::Isa::kScalar, simd::leq_all_scalar, simd::join_max_scalar},
      {simd::Isa::kSse2, simd::leq_all_sse2, simd::join_max_sse2},
      {simd::Isa::kAvx2, simd::leq_all_avx2, simd::join_max_avx2},
  };
  const std::size_t sizes[] = {4, 8, 16, 32, 64, 128, 256};

  std::printf("vector-clock kernels (ns per whole-clock op; dispatch=%s)\n",
              simd::isa_name(simd::active_isa()));
  std::printf("%6s %8s | %9s %9s %9s | %9s %9s %9s\n", "op", "slots",
              "scalar", "sse2", "avx2", "", "sse2 x", "avx2 x");

  for (const std::size_t n : sizes) {
    const auto a = make_slots(n, 7);
    const auto b = make_slots(n, 7);  // equal clocks: leq scans every slot
    auto src = make_slots(n, 9);
    const std::size_t reps = std::max<std::size_t>(
        1000, scale * 40'000'000 / n);

    double leq_ns[3] = {0, 0, 0};
    double join_ns[3] = {0, 0, 0};
    for (int v = 0; v < 3; ++v) {
      if (!simd::isa_available(variants[v].isa)) {
        leq_ns[v] = join_ns[v] = -1.0;
        continue;
      }
      std::uint64_t sink = 0;
      auto t0 = std::chrono::steady_clock::now();
      for (std::size_t r = 0; r < reps; ++r) {
        sink += variants[v].leq(a.data(), b.data(), n) ? 1 : 0;
      }
      leq_ns[v] = 1e9 * now_minus(t0) / static_cast<double>(reps);

      auto dst = make_slots(n, 3);
      t0 = std::chrono::steady_clock::now();
      for (std::size_t r = 0; r < reps; ++r) {
        variants[v].join(dst.data(), src.data(), n);
      }
      join_ns[v] = 1e9 * now_minus(t0) / static_cast<double>(reps);
      sink += dst[0];
      g_sink.fetch_add(sink, std::memory_order_relaxed);
    }

    auto speedup = [](const double* ns, int v) {
      return ns[v] > 0 ? ns[0] / ns[v] : 0.0;
    };
    std::printf("%6s %8zu | %9.2f %9.2f %9.2f | %9s %8.2fx %8.2fx\n", "leq",
                n, leq_ns[0], leq_ns[1], leq_ns[2], "", speedup(leq_ns, 1),
                speedup(leq_ns, 2));
    std::printf("%6s %8zu | %9.2f %9.2f %9.2f | %9s %8.2fx %8.2fx\n", "join",
                n, join_ns[0], join_ns[1], join_ns[2], "", speedup(join_ns, 1),
                speedup(join_ns, 2));
    char name[32];
    std::snprintf(name, sizeof(name), "n%zu", n);
    json.add("vc_leq", name,
             {{"scalar_ns", leq_ns[0]},
              {"sse2_ns", leq_ns[1]},
              {"avx2_ns", leq_ns[2]},
              {"sse2_speedup", speedup(leq_ns, 1)},
              {"avx2_speedup", speedup(leq_ns, 2)}});
    json.add("vc_join", name,
             {{"scalar_ns", join_ns[0]},
              {"sse2_ns", join_ns[1]},
              {"avx2_ns", join_ns[2]},
              {"sse2_speedup", speedup(join_ns, 1)},
              {"avx2_speedup", speedup(join_ns, 2)}});
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// Section 2: ShadowSpace lookup, page cache on vs off.
// ---------------------------------------------------------------------------

void shadow_cache_section(JsonReport& json, std::uint32_t max_threads,
                          std::size_t scale) {
  // Two access patterns bounding the cache's effect:
  //   sweep   sequential pass over the buffer - one miss per 512-slot page;
  //           the uncached path's bucket line is L1-hot too, so the win is
  //           the skipped hash arithmetic + atomic load.
  //   hammer  the same word over and over (a hot field / loop accumulator) -
  //           the cache's target case: two compares vs the full hash+walk.
  // Two working sets: 32K words (256 KiB shadow, cache-resident) and 512K
  // words (>= 4 MiB of shadow, exceeding L2 on the reference container) so
  // the page-cache win is measured both when the directory walk is
  // cache-hot and when every page touch goes to memory.
  std::printf("ShadowSpace lookup: of() [page cache] vs of_uncached()\n");
  std::printf("%8s %8s %8s %14s %14s %9s %14s\n", "pattern", "words",
              "threads", "cached ns/op", "uncached ns/op", "speedup",
              "cache misses");
  for (const std::size_t words : {std::size_t{32768}, std::size_t{1} << 19}) {
  const std::size_t sweeps =
      std::max<std::size_t>(1, 32 * scale / (words / 32768));
  for (const bool hammer : {false, true}) {
    for (std::uint32_t t = 1; t <= max_threads; t *= 2) {
      std::vector<double> buf(words, 0.0);
      RaceCollector races;
      rt::Runtime<rt::NullTool> R{rt::NullTool(&races)};
      rt::Runtime<rt::NullTool>::MainScope scope(R);
      auto& space = R.shadow_space();

      auto run = [&](bool cached) {
        const auto t0 = std::chrono::steady_clock::now();
        rt::parallel_for_threads(R, t, [&](std::uint32_t) {
          std::uint64_t sink = 0;
          for (std::size_t s = 0; s < sweeps; ++s) {
            for (std::size_t i = 0; i < words; ++i) {
              const void* p = hammer ? &buf[0] : &buf[i];
              auto& vs = cached ? space.of(p) : space.of_uncached(p);
              sink += reinterpret_cast<std::uintptr_t>(&vs);
            }
          }
          g_sink.fetch_add(sink, std::memory_order_relaxed);
        });
        return now_minus(t0);
      };

      const double ops = static_cast<double>(t) * sweeps * words;
      const double un = 1e9 * run(false) / ops;
      const std::size_t misses0 = space.stats().cache_misses;
      const double ca = 1e9 * run(true) / ops;
      const std::size_t misses =
          space.stats().cache_misses - misses0;  // misses in the cached run
      const char* pat = hammer ? "hammer" : "sweep";
      std::printf("%8s %7zuK %8u %14.2f %14.2f %8.2fx %14zu\n", pat,
                  words / 1024, t, ca, un, un / ca, misses);
      char name[48];
      std::snprintf(name, sizeof(name), "%s_w%zuk_t%u", pat, words / 1024, t);
      json.add("shadow_cache", name,
               {{"cached_ns", ca},
                {"uncached_ns", un},
                {"speedup", un / ca},
                {"cache_misses", static_cast<double>(misses)},
                {"lookups", ops},
                {"words", static_cast<double>(words)}});
    }
  }
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// Section 2b: packed-cell same-epoch fast path vs detector-call path.
// ---------------------------------------------------------------------------

/// Sweeps a pre-owned buffer through (a) PackedShadowSpace - the inlined
/// 64-bit cell compare - and (b) ShadowSpace - page lookup plus a full
/// detector handler on the word's VarState. Both runs are pure same-epoch
/// traffic (main's clock never moves), so the delta is exactly the
/// fast-path saving. The small working set is cache-resident; the large
/// one puts >= 4 MiB of shadow behind every sweep, where the packed cell's
/// 16 B/word footprint (vs a full VarState) also wins on memory traffic.
template <Detector D>
void packed_ab_rows(JsonReport& json, std::size_t scale) {
  for (const std::size_t words : {std::size_t{1} << 12, std::size_t{1} << 21}) {
    const std::size_t sweeps =
        words <= (std::size_t{1} << 12) ? 2048 * scale : 8 * scale;
    RaceCollector races;
    rt::Runtime<D> R{D(&races)};
    typename rt::Runtime<D>::MainScope scope(R);
    std::vector<std::uint64_t> buf(words, 1);
    auto& pspace = R.packed_space();
    auto& vspace = R.shadow_space();
    for (const std::uint64_t& w : buf) {
      rt::instrumented_write(R, pspace, &w);
      rt::instrumented_write(R, vspace, &w);
    }

    auto time_pass = [&](auto& space, bool is_write) {
      const auto t0 = std::chrono::steady_clock::now();
      std::uint64_t sink = 0;
      for (std::size_t s = 0; s < sweeps; ++s) {
        for (const std::uint64_t& w : buf) {
          sink += is_write ? rt::instrumented_write(R, space, &w)
                           : rt::instrumented_read(R, space, &w);
        }
      }
      g_sink.fetch_add(sink, std::memory_order_relaxed);
      return 1e9 * now_minus(t0) /
             (static_cast<double>(sweeps) * static_cast<double>(words));
    };

    const double det_r = time_pass(vspace, false);
    const double pk_r = time_pass(pspace, false);
    const double det_w = time_pass(vspace, true);
    const double pk_w = time_pass(pspace, true);
    VFT_CHECK(races.empty());
    VFT_CHECK(pspace.spilled() == 0);  // pure same-epoch: nothing escalated

    const double pk_mib =
        static_cast<double>(words) * 16.0 / (1024.0 * 1024.0);
    const double det_mib = static_cast<double>(words) *
                           static_cast<double>(sizeof(typename D::VarState)) /
                           (1024.0 * 1024.0);
    std::printf("%-8s %7zuK | read %6.2f vs %6.2f ns (%5.2fx) | "
                "write %6.2f vs %6.2f ns (%5.2fx) | shadow %.1f vs %.1f MiB\n",
                D::kName, words / 1024, pk_r, det_r, det_r / pk_r, pk_w, det_w,
                det_w / pk_w, pk_mib, det_mib);
    char name[48];
    std::snprintf(name, sizeof(name), "%s_w%zuk", D::kName, words / 1024);
    json.add("packed_cell", name,
             {{"packed_read_ns", pk_r},
              {"detector_read_ns", det_r},
              {"read_speedup", det_r / pk_r},
              {"packed_write_ns", pk_w},
              {"detector_write_ns", det_w},
              {"write_speedup", det_w / pk_w},
              {"packed_shadow_mib", pk_mib},
              {"varstate_shadow_mib", det_mib},
              {"words", static_cast<double>(words)}});
  }
}

void packed_section(JsonReport& json, std::size_t scale) {
  std::printf("packed-cell same-epoch fast path vs detector call "
              "(1 thread; packed vs ShadowSpace ns/op)\n");
  packed_ab_rows<VftV2>(json, scale);
  packed_ab_rows<FtCas>(json, scale);
  packed_ab_rows<VftV1>(json, scale);
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// Section: C-ABI dispatch cost (vft_read8 vs the inlined wrapper path).
// ---------------------------------------------------------------------------

/// What a real binary pays per access through the interposition stack:
/// vft_read8 crosses the TLS session lookup, the reentrancy guard, the
/// size/alignment split, and the SessionBackend vtable before reaching
/// the same Runtime<VftV2> tool handler the inlined wrapper path calls
/// directly. Both runs are single-threaded pure same-epoch sweeps over a
/// cache-resident buffer, so the delta is exactly the dispatch overhead.
void abi_section(JsonReport& json, std::size_t scale) {
  const std::size_t words = std::size_t{1} << 12;
  const std::size_t sweeps = 2048 * scale;
  std::vector<std::uint64_t> buf(words, 1);

  // ABI path: the process-global session, thread attached implicitly by
  // the first event (as under LD_PRELOAD).
  rt::ambient::Session::instance().configure("v2");
  rt::ambient::Session::instance().reset();
  for (const std::uint64_t& w : buf) vft_write8(&w);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < sweeps; ++s) {
    for (const std::uint64_t& w : buf) vft_read8(&w);
  }
  const double abi_ns = 1e9 * now_minus(t0) /
                        (static_cast<double>(sweeps) *
                         static_cast<double>(words));
  VFT_CHECK(vft_race_count() == 0);
  vft_detach();
  rt::ambient::Session::instance().reset();

  // Inlined wrapper path: same traffic on a private runtime, the tool
  // handler reached without any erased dispatch.
  RaceCollector races;
  rt::Runtime<VftV2> R{VftV2(&races)};
  rt::Runtime<VftV2>::MainScope scope(R);
  auto& vspace = R.shadow_space();
  for (const std::uint64_t& w : buf) {
    rt::instrumented_write(R, vspace, &w);
  }
  const auto t1 = std::chrono::steady_clock::now();
  std::uint64_t sink = 0;
  for (std::size_t s = 0; s < sweeps; ++s) {
    for (const std::uint64_t& w : buf) {
      sink += rt::instrumented_read(R, vspace, &w);
    }
  }
  g_sink.fetch_add(sink, std::memory_order_relaxed);
  const double inl_ns = 1e9 * now_minus(t1) /
                        (static_cast<double>(sweeps) *
                         static_cast<double>(words));
  VFT_CHECK(races.empty());

  std::printf("C-ABI dispatch (vft_read8) vs inlined wrapper, "
              "same-epoch reads\n");
  std::printf("%8s %12s %12s %14s\n", "", "abi ns/op", "inline ns/op",
              "overhead ns");
  std::printf("%8s %12.2f %12.2f %14.2f\n\n", "read8", abi_ns, inl_ns,
              abi_ns - inl_ns);
  json.add("abi_dispatch", "read8",
           {{"abi_ns", abi_ns},
            {"inline_ns", inl_ns},
            {"overhead_ns", abi_ns - inl_ns},
            {"ratio", abi_ns / inl_ns}});
}

// ---------------------------------------------------------------------------
// Section: event-context arming cost (the report pipeline's fast-path tax).
// ---------------------------------------------------------------------------

/// What ISSUE-6 added to the race-free access path: the interposition
/// boundary stores its caller's return address and frame address into
/// `vft_tl_event_ctx` before every forwarded event (two thread-local
/// stores), and the ABI clears the context afterwards (one store, present
/// in both runs here). Everything else - the frame-pointer walk, dladdr,
/// dedup, suppression matching - runs only when a race actually fires, so
/// an armed race-free sweep must cost the same as an unarmed one.
void report_ctx_section(JsonReport& json, std::size_t scale) {
  const std::size_t words = std::size_t{1} << 12;
  // Interleaved A/B: back-to-back runs let the second arrangement ride a
  // warmer cache / higher clock and have produced impossible negative
  // overheads. Alternating short blocks lands drift on both sides equally;
  // the per-mode spread across blocks is reported so a delta smaller than
  // the spread reads as noise, not as a (possibly negative) cost.
  const int kBlocks = 16;  // measured blocks per mode
  const std::size_t block_sweeps = std::max<std::size_t>(1, 128 * scale);
  std::vector<std::uint64_t> buf(words, 1);

  rt::ambient::Session::instance().configure("v2");
  rt::ambient::Session::instance().reset();
  for (const std::uint64_t& w : buf) vft_write8(&w);

  auto block = [&](bool armed) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t s = 0; s < block_sweeps; ++s) {
      for (const std::uint64_t& w : buf) {
        if (armed) {
          // Exactly the interposer's VFT_ARM_EVENT_CTX: two TLS stores.
          vft_tl_event_ctx.pc = __builtin_return_address(0);
          vft_tl_event_ctx.fp = __builtin_frame_address(0);
        }
        vft_read8(&w);
      }
    }
    return 1e9 * now_minus(t0) /
           (static_cast<double>(block_sweeps) * static_cast<double>(words));
  };

  block(false);  // warm both paths before measuring
  block(true);
  double sum[2] = {0, 0};
  double lo[2] = {1e30, 1e30};
  double hi[2] = {0, 0};
  for (int b = 0; b < kBlocks; ++b) {
    for (int armed = 0; armed < 2; ++armed) {
      const double ns = block(armed != 0);
      sum[armed] += ns;
      lo[armed] = std::min(lo[armed], ns);
      hi[armed] = std::max(hi[armed], ns);
    }
  }
  const double bare_ns = sum[0] / kBlocks;
  const double armed_ns = sum[1] / kBlocks;
  const double spread_ns = std::max(hi[0] - lo[0], hi[1] - lo[1]);
  VFT_CHECK(vft_race_count() == 0);
  vft_detach();
  rt::ambient::Session::instance().reset();

  std::printf("event-context arming (stack-capture hook) on vft_read8, "
              "race-free same-epoch reads (%d interleaved blocks/mode)\n",
              kBlocks);
  std::printf("%8s %12s %12s %14s %12s\n", "", "bare ns/op", "armed ns/op",
              "overhead ns", "spread ns");
  std::printf("%8s %12.2f %12.2f %14.2f %12.2f\n\n", "read8", bare_ns,
              armed_ns, armed_ns - bare_ns, spread_ns);
  json.add("report_ctx", "read8",
           {{"bare_ns", bare_ns},
            {"armed_ns", armed_ns},
            {"overhead_ns", armed_ns - bare_ns},
            {"spread_ns", spread_ns},
            {"ratio", armed_ns / bare_ns}});
}

// ---------------------------------------------------------------------------
// Section: sampling gate (ISSUE-7) - sampled-out cost and the controller.
// ---------------------------------------------------------------------------

/// What an always-on deployment pays for the accesses the gate throws
/// away. Three vft_read8 sweeps over the same cache-resident buffer:
///   exact   sampling off - the full ABI dispatch path (the 17-18 ns
///           baseline from abi_dispatch).
///   drop    policy=drop at a near-zero fixed rate: the gate fires in the
///           ABI macro before the TLS-session/vtable dispatch, so a
///           sampled-out access is one atomic flag load, one gate check
///           and a countdown decrement. Acceptance: within 2x of the
///           packed-cell inline floor (packed_cell.packed_read_ns).
///   cell    policy=cell at the same rate: skipped accesses still cross
///           the dispatch into the session and run the packed-cell fast
///           path, keeping last-access metadata fresh - the precision-
///           preserving middle ground.
/// The controller row then runs the same sweep under VFT_BUDGET with the
/// adaptive table on and reports where the rate and the measured overhead
/// settled (acceptance: within +-2 points of the budget).
void sampling_section(JsonReport& json, std::size_t scale) {
  const std::size_t words = std::size_t{1} << 12;
  const std::size_t sweeps = 2048 * scale;
  std::vector<std::uint64_t> buf(words, 1);

  auto sweep_ns = [&]() {
    rt::ambient::Session::instance().configure("v2");
    rt::ambient::Session::instance().reset();
    for (const std::uint64_t& w : buf) vft_write8(&w);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t s = 0; s < sweeps; ++s) {
      for (const std::uint64_t& w : buf) vft_read8(&w);
    }
    const double ns = 1e9 * now_minus(t0) /
                      (static_cast<double>(sweeps) *
                       static_cast<double>(words));
    VFT_CHECK(vft_race_count() == 0);
    return ns;
  };
  auto teardown = [&]() {
    vft_detach();
    rt::ambient::Session::instance().reset();
  };

  // 1/4096 fixed rate: >99.97% of accesses take the sampled-out path, so
  // the sweep time is the skip cost to within a fraction of a ns.
  const char* kSkipSpec = "rate=0.000244,adaptive=0,seed=7";

  unsetenv("VFT_SAMPLING");
  unsetenv("VFT_BUDGET");
  const double exact_ns = sweep_ns();
  teardown();

  setenv("VFT_SAMPLING", (std::string("policy=drop,") + kSkipSpec).c_str(), 1);
  const double drop_ns = sweep_ns();
  teardown();

  setenv("VFT_SAMPLING", (std::string("policy=cell,") + kSkipSpec).c_str(), 1);
  const double cell_ns = sweep_ns();
  teardown();

  // Controller: default policy, adaptive table on, 5% budget. The bench
  // loop is pure detector traffic, so "overhead" here is the sampled
  // fraction's self-time against the whole sweep's wall time - exactly
  // the signal the controller regulates; it must settle near the budget.
  setenv("VFT_SAMPLING", "seed=7", 1);
  setenv("VFT_BUDGET", "5", 1);
  const double budget_ns = sweep_ns();
  vft_sampling_stats_s st;
  const int have_stats = vft_sampling_stats(&st);
  VFT_CHECK(have_stats == 1);
  teardown();
  unsetenv("VFT_SAMPLING");
  unsetenv("VFT_BUDGET");

  std::printf("sampling gate on vft_read8 (rate=1/4096 fixed; "
              "sampled-out ns/op)\n");
  std::printf("%8s %12s %12s %12s\n", "", "exact ns", "drop ns", "cell ns");
  std::printf("%8s %12.2f %12.2f %12.2f\n", "read8", exact_ns, drop_ns,
              cell_ns);
  std::printf("controller @5%%: sweep %.2f ns/op, rate now %.4f, "
              "measured overhead %.2f%% (%llu adjustments)\n\n", budget_ns,
              st.rate, st.overhead_pct,
              static_cast<unsigned long long>(st.adjustments));
  json.add("sampling", "sampled_out",
           {{"exact_ns", exact_ns},
            {"drop_ns", drop_ns},
            {"cell_ns", cell_ns},
            {"drop_vs_exact", exact_ns / drop_ns},
            {"cell_vs_exact", exact_ns / cell_ns}});
  json.add("sampling", "controller_budget5",
           {{"sweep_ns", budget_ns},
            {"rate", st.rate},
            {"overhead_pct", st.overhead_pct},
            {"adjustments", static_cast<double>(st.adjustments)},
            {"sampled", static_cast<double>(st.sampled)},
            {"skipped", static_cast<double>(st.skipped)}});
}

// ---------------------------------------------------------------------------
// Section: access-history recording cost (ISSUE-10).
// ---------------------------------------------------------------------------

/// What the two-stack report machinery costs, and where. Recording is
/// slow-path-only by construction, so two interleaved A/B rows:
///   spill_write  every write is [Write Exclusive] (the thread's epoch is
///                bumped between sweeps), so with the ring installed every
///                access captures its stack, interns it, and pushes a ring
///                entry under the shard lock. The on/off delta is the full
///                per-record cost - paid only on epoch transitions, which
///                the Section 5 access mix puts at ~1% of accesses.
///   same_epoch_write  the same traffic without the epoch bump: pure
///                [Write Same Epoch] hits that return before the history
///                hook, so installed-vs-not must be indistinguishable.
///                check_bench_floor.sh pins the installed value.
void history_section(JsonReport& json, std::size_t scale) {
  const std::size_t vars_n = std::size_t{1} << 10;
  const int kBlocks = 8;
  const std::size_t block_sweeps = std::max<std::size_t>(1, 16 * scale);

  RaceCollector races;
  VftV2 det(&races);
  ThreadState st(0);
  std::deque<VftV2::VarState> vars(vars_n);
  for (std::size_t i = 0; i < vars_n; ++i) {
    vars[i].id = 0x1000 + 8 * i;
  }

  // One shared history instance for every "on" block: steady-state rings
  // and a warm intern table, not first-touch allocation.
  auto* hist = new history::AccessHistory();

  auto block = [&](bool slow, bool with_history) {
    history::install(with_history ? hist : nullptr);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t s = 0; s < block_sweeps; ++s) {
      for (auto& x : vars) {
        // The interposer's arming stores, so a recorded stack is the
        // real fp-walk capture, not the empty-context degenerate case.
        vft_tl_event_ctx.pc = __builtin_return_address(0);
        vft_tl_event_ctx.fp = __builtin_frame_address(0);
        det.write(st, x);
      }
      if (slow) st.inc();  // next sweep: every write is [Write Exclusive]
    }
    history::install(nullptr);
    vft_tl_event_ctx = vft_event_ctx_s{};
    return 1e9 * now_minus(t0) /
           (static_cast<double>(block_sweeps) * static_cast<double>(vars_n));
  };

  std::printf("access-history ring on the v2 slow path "
              "(%d interleaved blocks/mode)\n", kBlocks);
  std::printf("%18s %12s %12s %14s %12s\n", "", "off ns/op", "on ns/op",
              "overhead ns", "spread ns");
  for (const bool slow : {true, false}) {
    block(slow, false);  // warm both modes before measuring
    block(slow, true);
    double sum[2] = {0, 0};
    double lo[2] = {1e30, 1e30};
    double hi[2] = {0, 0};
    for (int b = 0; b < kBlocks; ++b) {
      for (int on = 0; on < 2; ++on) {
        const double ns = block(slow, on != 0);
        sum[on] += ns;
        lo[on] = std::min(lo[on], ns);
        hi[on] = std::max(hi[on], ns);
      }
    }
    const double off_ns = sum[0] / kBlocks;
    const double on_ns = sum[1] / kBlocks;
    const double spread_ns = std::max(hi[0] - lo[0], hi[1] - lo[1]);
    const char* name = slow ? "spill_write" : "same_epoch_write";
    std::printf("%18s %12.2f %12.2f %14.2f %12.2f\n", name, off_ns, on_ns,
                on_ns - off_ns, spread_ns);
    json.add("history", name,
             {{"off_ns", off_ns},
              {"on_ns", on_ns},
              {"overhead_ns", on_ns - off_ns},
              {"spread_ns", spread_ns},
              {"ratio", on_ns / off_ns}});
  }
  VFT_CHECK(races.empty());
  std::printf("recorded=%llu interned_stacks=%zu\n\n",
              static_cast<unsigned long long>(hist->recorded()),
              hist->interned_stacks());
}

// ---------------------------------------------------------------------------
// Section: atomic-event cost (the __tsan_atomic* sync surface).
// ---------------------------------------------------------------------------

/// What an interposed std::atomic load costs per declared order, against
/// the plain read8 ABI sweep as the baseline. The two orders take
/// structurally different paths (docs/ALGORITHM.md §16.2-16.3):
///   acquire  after a single release publisher the fast-epoch arm holds
///            that publisher's epoch; a loader whose clock already
///            covers it (here: the publisher itself) resolves with one
///            acquire load + epoch compare, no lock;
///   relaxed  always takes the locked accumulate path - the location's
///            sync clock must be folded into the thread's fence TLS so
///            a later acquire fence can retroactively pair with the
///            load. This is the price of fence soundness, and it is
///            paid per relaxed load.
/// Both loops hit one address, the steady state of a spin-loop consumer.
void atomics_section(JsonReport& json, std::size_t scale) {
  const std::size_t words = std::size_t{1} << 12;
  const std::size_t sweeps = 2048 * scale;
  const std::size_t ops = sweeps * words;
  std::vector<std::uint64_t> buf(words, 1);
  static std::uint64_t flag = 0;  // the "atomic" address (analysis only)

  rt::ambient::Session::instance().configure("v2");
  rt::ambient::Session::instance().reset();

  // Plain-access baseline: the same-epoch read8 sweep through the ABI.
  for (const std::uint64_t& w : buf) vft_write8(&w);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < sweeps; ++s) {
    for (const std::uint64_t& w : buf) vft_read8(&w);
  }
  const double plain_ns = 1e9 * now_minus(t0) / static_cast<double>(ops);

  // Arm the fast epoch: one release publication by this thread.
  vft_atomic_store(&flag, 3 /* __ATOMIC_RELEASE */);

  const auto t1 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    vft_atomic_load(&flag, 2 /* __ATOMIC_ACQUIRE */);
  }
  const double acq_ns = 1e9 * now_minus(t1) / static_cast<double>(ops);

  const auto t2 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    vft_atomic_load(&flag, 0 /* __ATOMIC_RELAXED */);
  }
  const double rlx_ns = 1e9 * now_minus(t2) / static_cast<double>(ops);

  VFT_CHECK(vft_race_count() == 0);
  vft_detach();
  rt::ambient::Session::instance().reset();

  std::printf("atomic load events (one address) vs plain read8 sweep\n");
  std::printf("%12s %12s %12s %12s\n", "", "acquire ns", "relaxed ns",
              "plain ns");
  std::printf("%12s %12.2f %12.2f %12.2f\n\n", "atomic_load", acq_ns,
              rlx_ns, plain_ns);
  json.add("atomic_dispatch", "load",
           {{"acquire_ns", acq_ns},
            {"relaxed_ns", rlx_ns},
            {"plain_read8_ns", plain_ns},
            {"acquire_vs_plain", acq_ns / plain_ns},
            {"relaxed_vs_acquire", rlx_ns / acq_ns}});
}

// ---------------------------------------------------------------------------
// Section: interposed-range cost (the mem* wrappers' SIMD prefix kernel).
// ---------------------------------------------------------------------------

/// What the mem*/str* interposition adds to a bulk copy: each wrapped
/// memcpy pays one vft_range_read over the source and one vft_range_write
/// over the destination before the real copy runs. With warm same-epoch
/// cells (the steady state of a phase-local buffer) the whole range
/// resolves in the SIMD prefix kernel - 4-8 packed cells per vector
/// compare - so the analysis tax stays within a small factor of the raw
/// copy itself. Acceptance: vft_ns / raw_ns <= 3 on race-free pages.
void range_section(JsonReport& json, std::size_t scale) {
  rt::ambient::Session::instance().configure("v2");
  rt::ambient::Session::instance().reset();

  // Advance the main thread's clock past its startup epoch: tid 0 at
  // clock 1 has epoch bits == 1, which collides with the ESCALATED
  // sentinel's W half and forces the SIMD write kernel onto its guarded
  // (sentinel-checking) loop. One release gets the steady state every
  // synchronizing program runs in, which is what the row should measure.
  static long range_clock_tick = 0;
  vft_mutex_lock(&range_clock_tick);
  vft_mutex_unlock(&range_clock_tick);

  std::printf("interposed memcpy (range events + copy) vs raw memcpy, "
              "warm same-epoch cells\n");
  std::printf("%8s %12s %12s %9s\n", "bytes", "vft ns/cp", "raw ns/cp",
              "ratio");
  for (const std::size_t bytes : {std::size_t{4096}, std::size_t{65536}}) {
    const std::size_t reps = std::max<std::size_t>(1, 200'000 * scale /
                                                          (bytes / 4096));
    std::vector<std::uint64_t> src(bytes / 8, 1);
    std::vector<std::uint64_t> dst(bytes / 8, 0);
    // Warm both shadow halves: the read pass advances every source cell's
    // R half to this epoch, the write pass stamps the destination's W.
    vft_range_read(src.data(), bytes);
    vft_range_write(dst.data(), bytes);

    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      vft_range_read(src.data(), bytes);
      vft_range_write(dst.data(), bytes);
      std::memcpy(dst.data(), src.data(), bytes);
      g_sink.fetch_add(dst[0], std::memory_order_relaxed);
    }
    const double vft_ns = 1e9 * now_minus(t0) / static_cast<double>(reps);

    t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      std::memcpy(dst.data(), src.data(), bytes);
      g_sink.fetch_add(dst[0], std::memory_order_relaxed);
    }
    const double raw_ns = 1e9 * now_minus(t0) / static_cast<double>(reps);
    VFT_CHECK(vft_race_count() == 0);

    std::printf("%8zu %12.2f %12.2f %8.2fx\n", bytes, vft_ns, raw_ns,
                vft_ns / raw_ns);
    char name[32];
    std::snprintf(name, sizeof(name), "b%zu", bytes);
    json.add("range_memcpy", name,
             {{"vft_ns", vft_ns},
              {"raw_ns", raw_ns},
              {"ratio", vft_ns / raw_ns},
              {"bytes", static_cast<double>(bytes)}});
  }
  std::printf("\n");
  vft_detach();
  rt::ambient::Session::instance().reset();
}

// ---------------------------------------------------------------------------
// Section 3: Volatile load fast path on vs off.
// ---------------------------------------------------------------------------

void volatile_section(JsonReport& json, std::uint32_t max_threads,
                      std::size_t scale) {
  const std::size_t loads = 200'000 * scale;

  std::printf("rt::Volatile load under VerifiedFT-v2: same-epoch fast path\n");
  std::printf("%8s %12s %12s %9s\n", "threads", "fast ns/op", "slow ns/op",
              "speedup");
  for (std::uint32_t t = 1; t <= max_threads; t *= 2) {
    auto run = [&](bool fast) {
      RaceCollector races;
      rt::Runtime<VftV2> R{VftV2(&races)};
      rt::Runtime<VftV2>::MainScope scope(R);
      rt::Volatile<int, VftV2> v(R, 0, fast);
      v.store(42);  // one publication; loads then hit the fast/slow path
      const auto t0 = std::chrono::steady_clock::now();
      rt::parallel_for_threads(R, t, [&](std::uint32_t) {
        std::uint64_t sink = 0;
        for (std::size_t i = 0; i < loads; ++i) {
          sink += static_cast<std::uint64_t>(v.load());
        }
        g_sink.fetch_add(sink, std::memory_order_relaxed);
      });
      const double secs = now_minus(t0);
      if (!races.empty()) {
        std::fprintf(stderr, "FATAL: volatile workload reported races\n");
        std::exit(1);
      }
      return 1e9 * secs / (static_cast<double>(t) * loads);
    };
    const double slow = run(false);
    const double fast = run(true);
    std::printf("%8u %12.2f %12.2f %8.2fx\n", t, fast, slow, slow / fast);
    char name[32];
    std::snprintf(name, sizeof(name), "t%u", t);
    json.add("volatile_load", name,
             {{"fast_ns", fast}, {"slow_ns", slow}, {"speedup", slow / fast}});
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// Section 4: Barrier phase cost (trajectory metric).
// ---------------------------------------------------------------------------

void barrier_section(JsonReport& json, std::uint32_t max_threads,
                     std::size_t scale) {
  const std::size_t phases = 2'000 * scale;

  std::printf("rt::Barrier arrive_and_wait under VerifiedFT-v2 "
              "(pre-sized clocks)\n");
  std::printf("%8s %14s\n", "threads", "ns/phase");
  for (std::uint32_t t = 2; t <= max_threads; t *= 2) {
    RaceCollector races;
    rt::Runtime<VftV2> R{VftV2(&races)};
    rt::Runtime<VftV2>::MainScope scope(R);
    rt::Barrier<VftV2> bar(R, t);
    const auto t0 = std::chrono::steady_clock::now();
    rt::parallel_for_threads(R, t, [&](std::uint32_t) {
      for (std::size_t p = 0; p < phases; ++p) bar.arrive_and_wait();
    });
    const double ns = 1e9 * now_minus(t0) / static_cast<double>(phases);
    std::printf("%8u %14.2f\n", t, ns);
    char name[32];
    std::snprintf(name, sizeof(name), "t%u", t);
    json.add("barrier_phase", name, {{"ns_per_phase", ns}});
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const auto max_threads =
      static_cast<std::uint32_t>(env_or("VFT_HOTPATH_MAXTHREADS", 8));
  const std::size_t scale = env_or("VFT_HOTPATH_SCALE", 1);

  std::printf("Hot-path microbenchmarks (E13)\n");
  std::printf("dispatched vector-clock ISA: %s (override with VFT_VC_ISA)\n\n",
              simd::isa_name(simd::active_isa()));

  JsonReport json("hotpath");
  json.context("isa", simd::isa_name(simd::active_isa()));
  json.context("max_threads", std::to_string(max_threads));
  json.context("scale", std::to_string(scale));

  vc_kernel_section(json, scale);
  shadow_cache_section(json, max_threads, scale);
  packed_section(json, scale);
  abi_section(json, scale);
  report_ctx_section(json, scale);
  sampling_section(json, scale);
  history_section(json, scale);
  atomics_section(json, scale);
  range_section(json, scale);
  volatile_section(json, max_threads, scale);
  barrier_section(json, max_threads, scale);

  return json.write("BENCH_hotpath.json") ? 0 : 1;
}
