// Extension experiment E11: shadow compression and check coalescing -
// the complementary overhead-reduction techniques of Section 9 that the
// paper positions VerifiedFT as a foundation for ("BigFoot ... lowers
// checking overhead to roughly 2.5x when built on top of either the
// earlier FastTrack implementations or VerifiedFT-v2").
//
// Workload: a crypt-like partitioned transform over a large array, thread
// slices aligned to granule boundaries (so coarse shadows stay precise).
// Rows sweep the elements-per-VarState granularity; the final row replaces
// per-access checks with one range check per slice pass (the dynamic
// analogue of BigFoot's displaced checks). Expectation: overhead falls
// monotonically from the fine-grained Table 1 level toward the ~2.5x
// BigFoot regime and below.
#include <chrono>

#include "harness.h"
#include "runtime/adaptive_array.h"
#include "runtime/coarse_array.h"

namespace {

using namespace vft;
using namespace vft::bench;

constexpr std::size_t kElems = 1 << 16;
constexpr std::size_t kPasses = 24;

std::uint64_t mix(std::uint64_t v, std::uint64_t salt) {
  v ^= salt + 0x9E3779B97F4A7C15ull + (v << 6) + (v >> 2);
  v *= 0xBF58476D1CE4E5B9ull;
  return v ^ (v >> 31);
}

/// Per-access checks at the given granularity.
template <Detector D>
double run_coarse(std::uint32_t threads, std::size_t granule,
                  std::uint32_t scale) {
  RaceCollector races;
  rt::Runtime<D> R{D(&races)};
  typename rt::Runtime<D>::MainScope scope(R);
  rt::CoarseArray<std::uint64_t, D> a(R, kElems, granule, 1);
  const auto t0 = std::chrono::steady_clock::now();
  rt::parallel_for_threads(R, threads, [&](std::uint32_t w) {
    // Slice boundaries are multiples of kElems/threads; keep them granule
    // aligned by construction (kElems and granule are powers of two).
    const std::size_t lo = kElems / threads * w;
    const std::size_t hi = kElems / threads * (w + 1);
    for (std::size_t p = 0; p < kPasses * scale; ++p) {
      for (std::size_t i = lo; i < hi; ++i) {
        a.store(i, mix(a.load(i), p));
      }
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  VFT_CHECK(races.empty());
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Dynamic granularity (Section 9's adaptive refinement): slices are
/// granule-aligned, so every granule stays thread-exclusive and coarse.
template <Detector D>
double run_adaptive(std::uint32_t threads, std::size_t granule,
                    std::uint32_t scale) {
  RaceCollector races;
  rt::Runtime<D> R{D(&races)};
  typename rt::Runtime<D>::MainScope scope(R);
  rt::AdaptiveArray<std::uint64_t, D> a(R, kElems, granule, 1);
  const auto t0 = std::chrono::steady_clock::now();
  rt::parallel_for_threads(R, threads, [&](std::uint32_t w) {
    const std::size_t lo = kElems / threads * w;
    const std::size_t hi = kElems / threads * (w + 1);
    for (std::size_t p = 0; p < kPasses * scale; ++p) {
      for (std::size_t i = lo; i < hi; ++i) {
        a.store(i, mix(a.load(i), p));
      }
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  VFT_CHECK(races.empty());
  return std::chrono::duration<double>(t1 - t0).count();
}

/// One range check per slice pass (BigFoot-style coalescing).
template <Detector D>
double run_ranged(std::uint32_t threads, std::uint32_t scale) {
  RaceCollector races;
  rt::Runtime<D> R{D(&races)};
  typename rt::Runtime<D>::MainScope scope(R);
  // Shadow at slice granularity so each pass's range check is exactly one
  // VarState operation.
  rt::CoarseArray<std::uint64_t, D> b(R, kElems, kElems / threads, 1);
  const auto t0 = std::chrono::steady_clock::now();
  rt::parallel_for_threads(R, threads, [&](std::uint32_t w) {
    const std::size_t lo = kElems / threads * w;
    const std::size_t hi = kElems / threads * (w + 1);
    for (std::size_t p = 0; p < kPasses * scale; ++p) {
      b.write_range(lo, hi, [&](std::size_t i) { return mix(b.raw(i), p); });
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  VFT_CHECK(races.empty());
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const BenchConfig bc = BenchConfig::from_env();
  const std::uint32_t threads = 4;
  std::printf("Shadow compression / check coalescing on VerifiedFT-v2 "
              "(threads=%u, %zu elems, %zu passes)\n\n", threads, kElems,
              kPasses * static_cast<std::size_t>(bc.scale));

  const double base = run_coarse<rt::NullTool>(threads, 1, bc.scale);
  std::printf("%-26s %10.4fs %10s\n", "uninstrumented base", base, "");
  for (const std::size_t g : {std::size_t{1}, std::size_t{4}, std::size_t{16},
                              std::size_t{64}, std::size_t{1024}}) {
    const double t = run_coarse<VftV2>(threads, g, bc.scale);
    std::printf("granule=%-18zu %10.4fs %9.2fx\n", g, t, (t - base) / base);
  }
  const double adaptive = run_adaptive<VftV2>(threads, 64, bc.scale);
  std::printf("%-26s %10.4fs %9.2fx  (granule=64, never splits here)\n",
              "adaptive granularity", adaptive, (adaptive - base) / base);
  // The range-check variant compiles to a different inner loop, so it is
  // compared against its own uninstrumented baseline.
  const double ranged_base = run_ranged<rt::NullTool>(threads, bc.scale);
  const double ranged = run_ranged<VftV2>(threads, bc.scale);
  std::printf("%-26s %10.4fs %9.2fx  (vs its own base %.4fs)\n",
              "range checks (BigFoot-ish)", ranged,
              (ranged - ranged_base) / ranged_base, ranged_base);
  std::printf("\npaper context: fine-grained FastTrack-family ~8x; BigFoot "
              "on top of VerifiedFT-v2 ~2.5x\n");
  return 0;
}
