// Instrumenting *existing* data structures with the ambient, TSan-style
// API: no rt::Var wrappers - plain structs plus VFT_AMBIENT_READ/WRITE
// annotations at the access sites (exactly the calls a compiler pass would
// insert), with ambient::Thread/Lock supplying the synchronization events.
// Whole-struct stores use the sized on_range_write - one event per shadow
// word, the memcpy-annotation shape.
//
// The ambient session is backed by the lock-free two-level ShadowSpace
// (word-granular, like TSan); the final stats line shows the shadow pages
// the run materialized.
//
//   $ ./raw_instrumentation
//
// The program is a tiny order-book: two producer threads append to a
// shared book under a lock and update per-producer tallies without one;
// a mistake in the tally sharing is detected and named in the report.
#include <cstdio>
#include <vector>

#include "runtime/ambient.h"

namespace amb = vft::rt::ambient;

struct Order {
  long price = 0;
  long qty = 0;
};

struct Book {
  Order orders[64];
  int count = 0;
};

int main() {
  amb::Session::instance().reset();
  amb::MainScope main_scope;

  Book book;
  long tallies[2] = {0, 0};
  long hot_total = 0;  // BUG: shared total updated without a lock
  amb::Lock book_mu;

  // Give the racy location a human-readable name for reports.
  amb::races().name_var(reinterpret_cast<std::uint64_t>(&hot_total),
                        "hot_total");

  auto produce = [&](int who) {
    for (int i = 0; i < 20; ++i) {
      const long price = 100 + who * 10 + i;
      book_mu.lock();
      const int slot = *VFT_AMBIENT_READ(&book.count);
      // One sized event for the whole Order, then plain stores: the range
      // variant walks both 8-byte words the struct occupies.
      amb::on_range_write(&book.orders[slot], sizeof(Order));
      book.orders[slot].price = price;
      book.orders[slot].qty = i + 1;
      *VFT_AMBIENT_WRITE(&book.count) = slot + 1;
      book_mu.unlock();

      // Per-producer tallies are private: fine without a lock.
      amb::on_write(&tallies[who]);
      tallies[who] += price;

      // ...but the shared running total is not (the planted bug). The
      // physical update goes through atomic_ref so the demo itself is
      // well-defined; the *logical* race is what VerifiedFT reports.
      amb::on_write(&hot_total);
      std::atomic_ref<long>(hot_total).fetch_add(price,
                                                 std::memory_order_relaxed);
    }
  };

  amb::Thread p0([&] { produce(0); });
  amb::Thread p1([&] { produce(1); });
  p0.join();
  p1.join();

  std::printf("book entries: %d (expected 40)\n", book.count);
  std::printf("tallies: %ld / %ld, hot_total: %ld\n", tallies[0], tallies[1],
              std::atomic_ref<long>(hot_total).load());
  std::printf("shadow: %s\n", vft::rt::str(amb::shadow().stats()).c_str());
  std::printf("race reports: %zu\n", amb::races().count());
  for (const auto& r : amb::races().all()) {
    std::printf("  %s\n", amb::races().describe(r).c_str());
  }
  // Every report should be about the named shared total - the locked book
  // and the private tallies stay clean.
  for (const auto& r : amb::races().all()) {
    if (r.var != reinterpret_cast<std::uint64_t>(&hot_total)) {
      std::printf("unexpected report on a non-bug location!\n");
      return 1;
    }
  }
  return amb::races().count() >= 1 ? 0 : 1;
}
