// Detector bake-off on a single workload: run one kernel from the suite
// under every detector in the family and print time, reports, and the
// rule mix - the quickest way to feel the Table 1 tradeoffs.
//
// The optional second argument selects the shadow backend for kernels
// ported to the address-keyed API (sor, lufact), doubling as a smoke test
// for the --shadow plumbing: per-run backend stats are printed so a
// misrouted backend is visible immediately.
//
//   $ ./detector_comparison              # sparse (read-shared-heavy)
//   $ ./detector_comparison raytracer    # any kernel from the suite
//   $ ./detector_comparison sor space    # grid shadow from the ShadowSpace
//   $ ./detector_comparison lufact table # ... or the sharded hash table
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "kernels/all.h"

namespace {

using namespace vft;
using namespace vft::kernels;

template <typename D, typename... Args>
void run_one(const char* kernel_name, ShadowBackend backend, Args&&... args) {
  const auto table = kernel_table<D>();
  for (const auto& e : table) {
    if (std::string(e.name) != kernel_name) continue;
    RaceCollector races;
    RuleStats stats;
    rt::Runtime<D> R(D(&races, &stats, std::forward<Args>(args)...));
    typename rt::Runtime<D>::MainScope scope(R);
    KernelConfig cfg;
    cfg.threads = 4;
    cfg.scale = 4;
    cfg.shadow = backend;
    const auto t0 = std::chrono::steady_clock::now();
    const KernelResult result = e.fn(R, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const std::uint64_t total = stats.total_accesses();
    const std::uint64_t fast = stats.count(Rule::kReadSameEpoch) +
                               stats.count(Rule::kWriteSameEpoch) +
                               stats.count(Rule::kReadSharedSameEpoch);
    std::printf("%-16s %8.4fs  valid=%d  races=%-3zu  accesses=%-10llu "
                "fast-path=%5.1f%%\n",
                D::kName, secs, result.valid ? 1 : 0, races.count(),
                static_cast<unsigned long long>(total),
                total ? 100.0 * static_cast<double>(fast) /
                            static_cast<double>(total)
                      : 0.0);
    if (R.has_shadow_space()) {
      std::printf("%-16s   shadow space: %s\n", "",
                  rt::str(R.shadow_space().stats()).c_str());
    }
    if (R.has_shadow_table()) {
      std::printf("%-16s   shadow table: entries=%zu\n", "",
                  R.shadow_table().size());
    }
    return;
  }
  std::fprintf(stderr, "unknown kernel %s\n", kernel_name);
  std::exit(2);
}

void run_base(const char* kernel_name, ShadowBackend backend) {
  for (const auto& e : kernel_table<rt::NullTool>()) {
    if (std::string(e.name) != kernel_name) continue;
    RaceCollector races;
    rt::Runtime<rt::NullTool> R{rt::NullTool(&races)};
    rt::Runtime<rt::NullTool>::MainScope scope(R);
    KernelConfig cfg;
    cfg.threads = 4;
    cfg.scale = 4;
    cfg.shadow = backend;
    const auto t0 = std::chrono::steady_clock::now();
    e.fn(R, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("%-16s %8.4fs  (uninstrumented base)\n", "none",
                std::chrono::duration<double>(t1 - t0).count());
    return;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* kernel = argc > 1 ? argv[1] : "sparse";
  ShadowBackend backend = ShadowBackend::kInline;
  if (argc > 2) {
    if (std::strcmp(argv[2], "table") == 0) {
      backend = ShadowBackend::kTable;
    } else if (std::strcmp(argv[2], "space") == 0) {
      backend = ShadowBackend::kSpace;
    } else if (std::strcmp(argv[2], "inline") != 0) {
      std::fprintf(stderr, "unknown shadow backend %s (inline|table|space)\n",
                   argv[2]);
      return 2;
    }
  }
  std::printf("kernel: %s (4 threads, scale 4, shadow backend: %s)\n\n",
              kernel, shadow_backend_name(backend));
  run_base(kernel, backend);
  run_one<VftV1>(kernel, backend);
  run_one<VftV15>(kernel, backend);
  run_one<VftV2>(kernel, backend);
  run_one<FtMutex>(kernel, backend);
  run_one<FtCas>(kernel, backend);
  run_one<Djit>(kernel, backend);
  std::printf("\nSee bench_table1 for the full suite with warm-up and "
              "repetition, bench_shadow for the backend lookup costs.\n");
  return 0;
}
