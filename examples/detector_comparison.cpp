// Detector bake-off on a single workload: run one kernel from the suite
// under every detector in the family and print time, reports, and the
// rule mix - the quickest way to feel the Table 1 tradeoffs.
//
//   $ ./detector_comparison            # sparse (read-shared-heavy)
//   $ ./detector_comparison raytracer  # any kernel from the suite
#include <chrono>
#include <cstdio>
#include <string>

#include "kernels/all.h"

namespace {

using namespace vft;
using namespace vft::kernels;

template <typename D, typename... Args>
void run_one(const char* kernel_name, Args&&... args) {
  const auto table = kernel_table<D>();
  for (const auto& e : table) {
    if (std::string(e.name) != kernel_name) continue;
    RaceCollector races;
    RuleStats stats;
    rt::Runtime<D> R(D(&races, &stats, std::forward<Args>(args)...));
    typename rt::Runtime<D>::MainScope scope(R);
    KernelConfig cfg;
    cfg.threads = 4;
    cfg.scale = 4;
    const auto t0 = std::chrono::steady_clock::now();
    const KernelResult result = e.fn(R, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const std::uint64_t total = stats.total_accesses();
    const std::uint64_t fast = stats.count(Rule::kReadSameEpoch) +
                               stats.count(Rule::kWriteSameEpoch) +
                               stats.count(Rule::kReadSharedSameEpoch);
    std::printf("%-16s %8.4fs  valid=%d  races=%-3zu  accesses=%-10llu "
                "fast-path=%5.1f%%\n",
                D::kName, secs, result.valid ? 1 : 0, races.count(),
                static_cast<unsigned long long>(total),
                total ? 100.0 * static_cast<double>(fast) /
                            static_cast<double>(total)
                      : 0.0);
    return;
  }
  std::fprintf(stderr, "unknown kernel %s\n", kernel_name);
  std::exit(2);
}

void run_base(const char* kernel_name) {
  for (const auto& e : kernel_table<rt::NullTool>()) {
    if (std::string(e.name) != kernel_name) continue;
    RaceCollector races;
    rt::Runtime<rt::NullTool> R{rt::NullTool(&races)};
    rt::Runtime<rt::NullTool>::MainScope scope(R);
    KernelConfig cfg;
    cfg.threads = 4;
    cfg.scale = 4;
    const auto t0 = std::chrono::steady_clock::now();
    e.fn(R, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("%-16s %8.4fs  (uninstrumented base)\n", "none",
                std::chrono::duration<double>(t1 - t0).count());
    return;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* kernel = argc > 1 ? argv[1] : "sparse";
  std::printf("kernel: %s (4 threads, scale 4)\n\n", kernel);
  run_base(kernel);
  run_one<VftV1>(kernel);
  run_one<VftV15>(kernel);
  run_one<VftV2>(kernel);
  run_one<FtMutex>(kernel);
  run_one<FtCas>(kernel);
  run_one<Djit>(kernel);
  std::printf("\nSee bench_table1 for the full suite with warm-up and "
              "repetition.\n");
  return 0;
}
