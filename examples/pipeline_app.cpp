// A realistic instrumented application: a three-stage producer/worker/
// aggregator pipeline using the full runtime API surface - mutexes,
// condition variables, a volatile shutdown flag, a barrier, and shared
// instrumented buffers. Demonstrates that VerifiedFT stays quiet on a
// correctly synchronized nontrivial program, and (with --bug) that it
// precisely localizes a realistic synchronization mistake: publishing the
// result buffer through an unsynchronized flag instead of the volatile.
//
//   $ ./pipeline_app          # clean run: 0 reports
//   $ ./pipeline_app --bug    # broken publication: precise reports
#include <cstdio>
#include <cstring>

#include "runtime/instrument.h"
#include "vft/vft_v2.h"

namespace {

using namespace vft;

constexpr std::size_t kQueueCap = 8;
constexpr int kItems = 200;
constexpr std::uint32_t kWorkers = 3;

template <typename D>
struct Queue {
  explicit Queue(rt::Runtime<D>& R)
      : mu(R), cv(R), items(R, kQueueCap, 0), head(R, 0), tail(R, 0),
        closed(R, 0) {}

  rt::Mutex<D> mu;
  rt::CondVar<D> cv;
  rt::Array<int, D> items;
  rt::Var<int, D> head, tail, closed;

  void push(int v) {
    mu.lock();
    cv.wait(mu, [&] { return tail.load() - head.load() < static_cast<int>(kQueueCap); });
    items.store(static_cast<std::size_t>(tail.load()) % kQueueCap, v);
    tail.store(tail.load() + 1);
    mu.unlock();
    cv.notify_all();
  }

  void close() {
    mu.lock();
    closed.store(1);
    mu.unlock();
    cv.notify_all();
  }

  /// Returns false at end-of-stream.
  bool pop(int* out) {
    mu.lock();
    cv.wait(mu, [&] { return head.load() != tail.load() || closed.load() == 1; });
    if (head.load() == tail.load()) {
      mu.unlock();
      return false;
    }
    *out = items.load(static_cast<std::size_t>(head.load()) % kQueueCap);
    head.store(head.load() + 1);
    mu.unlock();
    cv.notify_all();
    return true;
  }
};

int run(bool inject_bug) {
  RaceCollector races;
  rt::Runtime<VftV2> R{VftV2(&races)};
  rt::Runtime<VftV2>::MainScope scope(R);

  Queue<VftV2> queue(R);
  rt::Array<long, VftV2> partials(R, kWorkers, 0);
  rt::Volatile<int, VftV2> published(R, 0);
  rt::Var<int, VftV2> published_racy(R, 0);  // the --bug variant's "flag"
  rt::Barrier<VftV2> done_barrier(R, kWorkers + 1);

  rt::Thread<VftV2> producer(R, [&] {
    for (int i = 1; i <= kItems; ++i) queue.push(i);
    queue.close();
  });

  std::vector<std::unique_ptr<rt::Thread<VftV2>>> workers;
  for (std::uint32_t w = 0; w < kWorkers; ++w) {
    workers.push_back(std::make_unique<rt::Thread<VftV2>>(R, [&, w] {
      long acc = 0;
      int item;
      while (queue.pop(&item)) acc += item;
      partials.store(w, acc);
      done_barrier.arrive_and_wait();
    }));
  }

  rt::Thread<VftV2> aggregator(R, [&] {
    done_barrier.arrive_and_wait();  // all partials published by the barrier
    long total = 0;
    for (std::uint32_t w = 0; w < kWorkers; ++w) total += partials.load(w);
    partials.store(0, total);  // reuse slot 0 as the result cell
    if (inject_bug) {
      published_racy.store(1);  // BUG: plain flag, no release semantics
    } else {
      published.store(1);  // volatile write publishes the result
    }
  });

  producer.join();
  for (auto& w : workers) w->join();

  // Main polls the flag and reads the result. With the volatile this is a
  // clean publication; with the plain flag it is the classic broken
  // "ready flag" idiom and VerifiedFT reports both the flag race and the
  // unprotected read of the result cell.
  if (inject_bug) {
    while (published_racy.load() != 1) {
    }
  } else {
    while (published.load() != 1) {
    }
  }
  const long total = partials.load(0);
  aggregator.join();

  std::printf("pipeline total = %ld (expected %d)\n", total,
              kItems * (kItems + 1) / 2);
  std::printf("race reports: %zu\n", races.count());
  for (const auto& r : races.all()) std::printf("  %s\n", r.str().c_str());
  if (inject_bug && races.empty()) {
    std::printf("expected reports under --bug but saw none!\n");
    return 1;
  }
  if (!inject_bug && !races.empty()) {
    std::printf("unexpected reports on the clean run!\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool bug = argc > 1 && std::strcmp(argv[1], "--bug") == 0;
  std::printf("pipeline_app (%s)\n", bug ? "--bug: broken publication"
                                         : "clean");
  return run(bug);
}
