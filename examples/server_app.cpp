// A server-shaped application on the extended runtime surface: a thread
// pool serving requests against a configuration loaded through Once
// (static-initializer ordering), a cache guarded by a reader-writer lock,
// and metrics in a dynamic-granularity array that stays coarse until the
// workers actually share it. Demonstrates that VerifiedFT-v2 stays quiet
// across the whole primitive zoo on a realistic composition - and, with
// --bug, that dropping the cache's write lock to a read lock is caught.
//
//   $ ./server_app
//   $ ./server_app --bug
#include <cstdio>
#include <cstring>

#include "runtime/adaptive_array.h"
#include "runtime/sync_extras.h"
#include "runtime/thread_pool.h"
#include "vft/vft_v2.h"

namespace {

using namespace vft;

int run(bool inject_bug) {
  RaceCollector races;
  rt::Runtime<VftV2> R{VftV2(&races)};
  rt::Runtime<VftV2>::MainScope scope(R);

  constexpr std::size_t kCacheSlots = 32;
  constexpr int kRequests = 400;

  // Configuration, initialized exactly once by whichever worker gets there
  // first; everyone else is ordered after the initializer.
  rt::Once<int, VftV2> config(R);
  auto config_table = std::make_unique<rt::Array<std::uint64_t, VftV2>>(R, 16);

  // Cache: rwlock-protected key/value slots.
  rt::SharedMutex<VftV2> cache_rw(R);
  rt::Array<std::uint64_t, VftV2> cache_keys(R, kCacheSlots, 0);
  rt::Array<std::uint64_t, VftV2> cache_vals(R, kCacheSlots, 0);
  cache_keys.set_name("cache.keys");
  cache_vals.set_name("cache.vals");

  // Metrics: per-request-class counters; the pool workers share them, so
  // the adaptive shadow splits on first contention and stays precise.
  rt::AdaptiveArray<std::uint64_t, VftV2> metrics(R, 64, 16, 0);
  rt::Mutex<VftV2> metrics_mu(R);

  rt::ThreadPool<VftV2> pool(R, 3);

  // Two priming requests warm the same cache slot from two workers that
  // are deliberately in flight at the same time (the barrier makes the
  // overlap deterministic even on one core). With write locks this is a
  // clean ordered pair; under --bug's read locks it is the race.
  rt::Barrier<VftV2> rendezvous(R, 2);
  for (int p = 0; p < 2; ++p) {
    pool.submit([&, p] {
      rendezvous.arrive_and_wait();
      const std::uint64_t key = 55;  // same slot for both primers
      if (inject_bug) {
        rt::SharedGuard<VftV2> g(cache_rw);
        cache_keys.store(key % kCacheSlots, key);
        cache_vals.store(key % kCacheSlots, key * 10 + p);
      } else {
        cache_rw.lock();
        cache_keys.store(key % kCacheSlots, key);
        cache_vals.store(key % kCacheSlots, key * 10 + p);
        cache_rw.unlock();
      }
    });
  }

  for (int req = 0; req < kRequests; ++req) {
    pool.submit([&, req] {
      // Metrics first: were it last, the metrics lock would incidentally
      // order successive requests end-to-end and mask the --bug race (an
      // instructive effect in its own right - incidental synchronization
      // hiding races is why precise detectors must track *actual* edges).
      {
        rt::Guard<VftV2> g(metrics_mu);
        const std::size_t cls = static_cast<std::size_t>(req) % 64;
        metrics.store(cls, metrics.load(cls) + 1);
      }
      const int seed = config.get([&] {
        for (std::size_t i = 0; i < config_table->size(); ++i) {
          config_table->store(i, 0x9E3779B9ull * (i + 1));
        }
        return 41;
      });
      const std::uint64_t key =
          1 + (static_cast<std::uint64_t>(req) * 2654435761ull + seed) % 97;
      const std::size_t slot = key % kCacheSlots;

      // Fast path: shared lookup.
      bool hit;
      {
        rt::SharedGuard<VftV2> g(cache_rw);
        hit = cache_keys.load(slot) == key;
      }
      if (!hit) {
        const std::uint64_t value =
            key * config_table->load(key % config_table->size());
        if (inject_bug) {
          // BUG: populate the cache while holding only the *read* lock.
          rt::SharedGuard<VftV2> g(cache_rw);
          cache_keys.store(slot, key);
          cache_vals.store(slot, value);
        } else {
          cache_rw.lock();
          cache_keys.store(slot, key);
          cache_vals.store(slot, value);
          cache_rw.unlock();
        }
      }
    });
  }
  pool.wait_idle();
  pool.shutdown();

  std::uint64_t served = 0;
  for (std::size_t i = 0; i < 64; ++i) served += metrics.raw(i);
  std::printf("requests served: %llu (expected %d)\n",
              static_cast<unsigned long long>(served), kRequests);
  std::printf("race reports: %zu%s\n", races.count(),
              races.suppressed() != 0 ? " (+suppressed)" : "");
  races.set_per_var_limit(1);
  for (const auto& r : races.all()) {
    std::printf("  %s\n", races.describe(r).c_str());
  }
  if (inject_bug) {
    return races.empty() ? 1 : 0;  // must be caught
  }
  return races.empty() && served == kRequests ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool bug = argc > 1 && std::strcmp(argv[1], "--bug") == 0;
  std::printf("server_app (%s)\n",
              bug ? "--bug: cache fill under read lock" : "clean");
  return run(bug);
}
