// Quickstart: attach VerifiedFT-v2 to a small multithreaded program and
// see it (a) stay quiet on properly locked code and (b) pinpoint a real
// data race.
//
//   $ ./quickstart
//
// Build: this file links against the vft_runtime library; see
// examples/CMakeLists.txt. The pattern is always the same:
//
//   1. create a RaceCollector and a Runtime bound to a detector,
//   2. enter a MainScope for the initial thread,
//   3. write the target against the rt:: wrappers (Var/Array/Mutex/
//      Thread/...); every access runs the detector inline,
//   4. inspect the collector.
#include <cstdio>

#include "runtime/instrument.h"
#include "vft/vft_v2.h"

using vft::RaceCollector;
using vft::VftV2;

int main() {
  // --- Part 1: a correctly synchronized counter -> no reports ---
  {
    RaceCollector races;
    vft::rt::Runtime<VftV2> runtime{VftV2(&races)};
    vft::rt::Runtime<VftV2>::MainScope scope(runtime);

    vft::rt::Var<int, VftV2> counter(runtime, 0);
    vft::rt::Mutex<VftV2> mu(runtime);

    vft::rt::parallel_for_threads(runtime, 4, [&](std::uint32_t) {
      for (int i = 0; i < 1000; ++i) {
        vft::rt::Guard<VftV2> g(mu);
        counter.store(counter.load() + 1);
      }
    });

    std::printf("locked counter: value=%d, races reported=%zu\n",
                counter.load(), races.count());
  }

  // --- Part 2: the same counter without the lock -> a precise report ---
  {
    RaceCollector races;
    vft::rt::Runtime<VftV2> runtime{VftV2(&races)};
    vft::rt::Runtime<VftV2>::MainScope scope(runtime);

    vft::rt::Var<int, VftV2> counter(runtime, 0);

    vft::rt::parallel_for_threads(runtime, 4, [&](std::uint32_t) {
      for (int i = 0; i < 1000; ++i) {
        counter.store(counter.load() + 1);  // oops: no lock
      }
    });

    std::printf("unlocked counter: value=%d (lost updates likely), "
                "races reported=%zu\n",
                counter.load(), races.count());
    if (const auto first = races.first()) {
      std::printf("first report: %s\n", first->str().c_str());
    }
  }
  return 0;
}
