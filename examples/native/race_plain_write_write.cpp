// Native corpus: two unordered children increment a shared counter with
// no synchronization at all - the textbook write-write race (the
// mambo_ts `race_write_write` shape).
//
// This program is an *unmodified* pthread program: no vft headers, no
// wrappers. It is compiled with `-fsanitize=thread` (compile-only) so
// the compiler emits __tsan_* access events, and the interposition
// library supplies those plus the pthread synchronization events.
//
// Expected verdict: RACE (the children's writes are unordered no matter
// how the scheduler interleaves them).
#include <pthread.h>

namespace {

long counter = 0;

void* bump(void*) {
  for (int i = 0; i < 1000; ++i) counter = counter + 1;
  return nullptr;
}

}  // namespace

int main() {
  pthread_t a, b;
  pthread_create(&a, nullptr, bump, nullptr);
  pthread_create(&b, nullptr, bump, nullptr);
  pthread_join(a, nullptr);
  pthread_join(b, nullptr);
  return counter > 0 ? 0 : 1;
}
