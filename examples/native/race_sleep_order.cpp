// Native corpus: physical timing is not synchronization. The main
// thread sleeps long enough that the child's write "always" happens
// first in wall-clock time (the mambo_ts `race_write_write_time`
// shape) - but sleeping creates no happens-before edge, so a *precise*
// detector must still report the write-write race. This is exactly the
// schedule-independence property vector-clock analyses have over
// happened-to-work testing.
//
// Expected verdict: RACE (in every schedule, including the "ordered"
// one the sleep enforces).
#include <pthread.h>
#include <unistd.h>

namespace {

long counter = 0;

void* early_writer(void*) {
  counter += 10;
  return nullptr;
}

}  // namespace

int main() {
  pthread_t t;
  pthread_create(&t, nullptr, early_writer, nullptr);
  usleep(50 * 1000);  // "surely the child is done by now"
  counter += 20;      // unordered with the child's write regardless
  pthread_join(t, nullptr);
  return counter > 0 ? 0 : 1;
}
