// Native corpus: a target that races and THEN crashes - the salvage
// path's test case. The two children run the plain write-write race
// shape; after both are joined, main dereferences null and dies with
// SIGSEGV before the interposer's library destructor (the normal report
// writer) can ever run.
//
// The interposer's crash handler must salvage a partial report
// (clean_exit=false) on the way down, and `vft run` must still give the
// RACE verdict from it - flagging the run as partial, not silently
// reporting "no report from the target".
//
// Expected verdict: RACE (from the salvaged report; target exit is
// 128+SIGSEGV).
#include <pthread.h>

namespace {

long counter = 0;

void* bump(void*) {
  for (int i = 0; i < 100; ++i) counter = counter + 1;
  return nullptr;
}

}  // namespace

int main() {
  pthread_t a, b;
  pthread_create(&a, nullptr, bump, nullptr);
  pthread_create(&b, nullptr, bump, nullptr);
  pthread_join(a, nullptr);
  pthread_join(b, nullptr);
  volatile int* die = nullptr;
  *die = static_cast<int>(counter);  // SIGSEGV with races on the books
  return 0;
}
