// Native corpus: a *detached* thread races with a joinable one. The
// detached thread writes the shared counter and then announces
// completion through a mutex-protected flag; a joinable thread writes
// the same counter; main waits for the announcement and joins the
// joinable thread. The flag handshake orders the detached thread
// against *main*, but nothing orders its write against the joinable
// thread's - a race in every schedule.
//
// Lifecycle-wise this is the interposer's hard case: the detached
// thread exits without a join, so its tid slot must retire from its
// end-of-thread event (pthread key destructor), exactly once, with no
// registry aborts - while the joinable thread retires from the join
// path as usual.
//
// Creation order matters for determinism: the joinable thread is
// created FIRST. Its slot stays live until the final join, so the
// detached thread always gets a distinct slot - if it were created
// first, it could finish and retire before the joinable thread exists,
// whose reused slot would then continue the detached clock and order
// the two writes (the sound slot-reuse tradeoff hiding the race on
// some schedules).
//
// Expected verdict: RACE.
#include <pthread.h>

namespace {

long counter = 0;
pthread_mutex_t mu = PTHREAD_MUTEX_INITIALIZER;
pthread_cond_t cv = PTHREAD_COND_INITIALIZER;
bool detached_done = false;

void* detached_fn(void*) {
  counter = 1;
  pthread_mutex_lock(&mu);
  detached_done = true;
  pthread_cond_signal(&cv);
  pthread_mutex_unlock(&mu);
  return nullptr;
}

void* joinable_fn(void*) {
  counter = 2;
  return nullptr;
}

}  // namespace

int main() {
  pthread_attr_t attr;
  pthread_attr_init(&attr);
  pthread_attr_setdetachstate(&attr, PTHREAD_CREATE_DETACHED);
  pthread_t d, j;
  pthread_create(&j, nullptr, joinable_fn, nullptr);
  pthread_create(&d, &attr, detached_fn, nullptr);
  pthread_attr_destroy(&attr);

  pthread_mutex_lock(&mu);
  while (!detached_done) pthread_cond_wait(&cv, &mu);
  pthread_mutex_unlock(&mu);
  pthread_join(j, nullptr);
  return counter > 0 ? 0 : 1;
}
