// Native corpus: two unordered children bulk-copy into the same
// destination through libc memcpy - the textbook write-write race, but
// arriving via the interposer's mem* range events (and the SIMD
// packed-cell range kernel) instead of compile-time instrumentation.
//
// The copies go through a volatile function pointer so the compiler
// cannot expand them into inline stores - inline stores would be
// reported through the __tsan_* plain-access surface and this program
// exists to pin down the libc-wrapper path.
//
// Expected verdict: RACE (the children's range writes are unordered no
// matter how the scheduler interleaves them).
#include <pthread.h>
#include <string.h>

namespace {

using MemcpyFn = void* (*)(void*, const void*, size_t);
volatile MemcpyFn do_memcpy = memcpy;

char src_a[4096];
char src_b[4096];
char dst[4096];

void* copy_a(void*) {
  for (int i = 0; i < 200; ++i) do_memcpy(dst, src_a, sizeof(dst));
  return nullptr;
}

void* copy_b(void*) {
  for (int i = 0; i < 200; ++i) do_memcpy(dst, src_b, sizeof(dst));
  return nullptr;
}

}  // namespace

int main() {
  pthread_t a, b;
  pthread_create(&a, nullptr, copy_a, nullptr);
  pthread_create(&b, nullptr, copy_b, nullptr);
  pthread_join(a, nullptr);
  pthread_join(b, nullptr);
  return dst[0] == src_a[0] || dst[0] == src_b[0] ? 0 : 1;
}
