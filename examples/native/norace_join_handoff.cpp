// Native corpus: ownership handoff through fork and join edges alone.
// The parent writes before creating the child (fork edge orders it),
// the child mutates, the parent joins and mutates again (join edge
// orders that). No locks anywhere; the thread lifecycle is the only
// synchronization, so this exercises the interposer's create/join
// handler placement (fork *before* the native create, join *after* the
// native join) end to end.
//
// Expected verdict: NO RACE.
#include <pthread.h>

namespace {

long value = 0;

void* child_fn(void*) {
  value = value + 1;
  return nullptr;
}

}  // namespace

int main() {
  value = 1;
  pthread_t t;
  pthread_create(&t, nullptr, child_fn, nullptr);
  pthread_join(t, nullptr);
  value = value + 1;
  return value == 3 ? 0 : 1;
}
