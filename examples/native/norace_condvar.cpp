// Native corpus: producer/consumer handoff through a condition
// variable. The producer fills `data` *outside* any critical section,
// then publishes readiness under the mutex; the consumer waits on the
// condvar and reads `data` *after* leaving the critical section. The
// only thing ordering the bare write against the bare read is the
// release->acquire edge through the mutex that pthread_cond_wait
// re-acquires - precisely the interposer rule that a condvar wait is a
// release before blocking and an acquire after waking.
//
// Expected verdict: NO RACE.
#include <pthread.h>

namespace {

long data = 0;
bool ready = false;
pthread_mutex_t mu = PTHREAD_MUTEX_INITIALIZER;
pthread_cond_t cv = PTHREAD_COND_INITIALIZER;

void* producer(void*) {
  data = 42;  // bare write, ordered only by the handshake below
  pthread_mutex_lock(&mu);
  ready = true;
  pthread_cond_signal(&cv);
  pthread_mutex_unlock(&mu);
  return nullptr;
}

}  // namespace

int main() {
  pthread_t p;
  pthread_create(&p, nullptr, producer, nullptr);
  pthread_mutex_lock(&mu);
  while (!ready) pthread_cond_wait(&cv, &mu);
  pthread_mutex_unlock(&mu);
  const long seen = data;  // bare read, after the reacquire edge
  pthread_join(p, nullptr);
  return seen == 42 ? 0 : 1;
}
