// Native corpus: both threads lock - but not the *same* lock. Each
// increments the shared counter inside a critical section on its own
// private mutex, so every access is "protected" and yet nothing orders
// the two threads. A lockset-style analysis might need heuristics here;
// a vector-clock analysis simply sees no release->acquire edge between
// the conflicting writes. Also exercises the address-keyed lock
// registry with more than one native mutex in flight.
//
// Expected verdict: RACE.
#include <pthread.h>

namespace {

long counter = 0;
pthread_mutex_t mu_a = PTHREAD_MUTEX_INITIALIZER;
pthread_mutex_t mu_b = PTHREAD_MUTEX_INITIALIZER;

void* bump_a(void*) {
  for (int i = 0; i < 100; ++i) {
    pthread_mutex_lock(&mu_a);
    counter = counter + 1;
    pthread_mutex_unlock(&mu_a);
  }
  return nullptr;
}

void* bump_b(void*) {
  for (int i = 0; i < 100; ++i) {
    pthread_mutex_lock(&mu_b);
    counter = counter + 1;
    pthread_mutex_unlock(&mu_b);
  }
  return nullptr;
}

}  // namespace

int main() {
  pthread_t a, b;
  pthread_create(&a, nullptr, bump_a, nullptr);
  pthread_create(&b, nullptr, bump_b, nullptr);
  pthread_join(a, nullptr);
  pthread_join(b, nullptr);
  return counter > 0 ? 0 : 1;
}
