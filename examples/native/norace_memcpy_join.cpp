// Native corpus: bulk mem* traffic over shared buffers, strictly ordered
// by a join - the child memsets and copies, the parent joins and then
// reuses the very same bytes. The interposer must both *see* the libc
// calls (range read/write events per overlapped shadow word) and order
// them through the join edge: any report here is a false positive.
//
// Volatile function pointers keep the compiler from expanding the calls
// into inline stores (see race_memcpy.cpp).
//
// Expected verdict: NONE.
#include <pthread.h>
#include <string.h>

namespace {

using MemcpyFn = void* (*)(void*, const void*, size_t);
using MemsetFn = void* (*)(void*, int, size_t);
volatile MemcpyFn do_memcpy = memcpy;
volatile MemsetFn do_memset = memset;

char scratch[8192];
char staging[8192];

void* child(void*) {
  do_memset(scratch, 0x5a, sizeof(scratch));
  do_memcpy(staging, scratch, sizeof(staging));
  return nullptr;
}

}  // namespace

int main() {
  pthread_t t;
  pthread_create(&t, nullptr, child, nullptr);
  pthread_join(t, nullptr);
  do_memset(staging, 0, sizeof(staging));  // ordered by the join
  do_memcpy(scratch, staging, sizeof(scratch));
  return scratch[0] == 0 ? 0 : 1;
}
