// Native corpus: ONE race site firing over a thousand times - the dedup
// pipeline's stress shape. A writer thread stores the flag once,
// unordered with a reader thread that then reads it 1100 times, each
// read in a fresh epoch (its private mutex bumps the reader's clock
// every iteration, and release-epoch bumps defeat the same-epoch
// fast path), so every read re-detects the same write-read race
// at the same source line.
//
// What the report must show (scripts/check_report_pipeline.sh asserts
// it): exactly ONE error context with count >= 1000 - not a thousand
// report lines - keyed by the racing access's call stack. This is the
// valgrind error-context discipline at race scale.
//
// Determinism: the reader spins until it observes the writer's store
// before starting its counted loop, so every iteration races
// regardless of scheduling. The spin reads race too, but from a
// different source line - a separate, small context that never reaches
// the 1000 threshold.
//
// Expected verdict: RACE.
#include <pthread.h>
#include <sched.h>

namespace {

volatile long flag = 0;  // volatile: the spin must re-load every pass
long sink = 0;
pthread_mutex_t reader_mu = PTHREAD_MUTEX_INITIALIZER;

void* writer(void*) {
  flag = 42;  // unordered with every read below: the one racy write
  return nullptr;
}

void* reader(void*) {
  while (flag == 0) sched_yield();  // small side context (separate line)
  // 1100, not 1000: the first counted read lands in the same epoch as
  // the final spin read, whose race already force-updated the read
  // epoch (Section 7 fail-over), so it folds into that no-op. The
  // asserted threshold is >= 1000 occurrences in the loop's context.
  for (int i = 0; i < 1100; ++i) {
    // The private mutex orders nothing (no other thread touches it);
    // its release bumps this thread's epoch so iteration i+1 cannot
    // hide behind iteration i's same-epoch no-op.
    pthread_mutex_lock(&reader_mu);
    sink += flag;  // the hot race site: fires once per iteration
    pthread_mutex_unlock(&reader_mu);
  }
  return nullptr;
}

}  // namespace

int main() {
  pthread_t w, r;
  pthread_create(&r, nullptr, reader, nullptr);
  pthread_create(&w, nullptr, writer, nullptr);
  pthread_join(w, nullptr);
  pthread_join(r, nullptr);
  return sink > 0 ? 0 : 1;
}
