// Native corpus: the same two-incrementer shape as
// race_plain_write_write, but with every access inside a critical
// section on one mutex (the mambo_ts `no_race_write_write` shape). The
// lock's release->acquire edges order the critical sections, so the
// analysis must stay quiet.
//
// Expected verdict: NO RACE.
#include <pthread.h>

namespace {

long counter = 0;
pthread_mutex_t mu = PTHREAD_MUTEX_INITIALIZER;

void* bump(void*) {
  for (int i = 0; i < 1000; ++i) {
    pthread_mutex_lock(&mu);
    counter = counter + 1;
    pthread_mutex_unlock(&mu);
  }
  return nullptr;
}

}  // namespace

int main() {
  pthread_t a, b;
  pthread_create(&a, nullptr, bump, nullptr);
  pthread_create(&b, nullptr, bump, nullptr);
  pthread_join(a, nullptr);
  pthread_join(b, nullptr);
  return counter == 2000 ? 0 : 1;
}
