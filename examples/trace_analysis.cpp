// Offline trace analysis: feed a Section 2 trace (from the command line or
// the built-in Figure 1 example) through the feasibility checker, the
// VerifiedFT specification, and the happens-before oracle, and print a
// per-operation account of which analysis rule fired.
//
//   $ ./trace_analysis                      # analyzes the Figure 1 trace
//   $ ./trace_analysis "wr(0,x1); rd(1,x1)" # analyzes your trace
//
// This is the workflow for debugging a race report: replay the suspect
// interleaving as a trace and watch the analysis state call the race.
#include <cstdio>
#include <string>

#include "trace/feasibility.h"
#include "trace/hb_oracle.h"
#include "trace/replay.h"

int main(int argc, char** argv) {
  using namespace vft;
  const std::string input =
      argc > 1 ? argv[1]
               : "wr(0,x0); acq(0,m0); wr(0,x0); rel(0,m0); "
                 "acq(1,m0); rd(1,x0); rel(1,m0); rd(0,x0); wr(0,x0)";

  trace::Trace t;
  if (!trace::parse(input, &t)) {
    std::fprintf(stderr, "could not parse trace: %s\n", input.c_str());
    return 2;
  }

  if (const auto err = trace::check_feasible(t)) {
    std::fprintf(stderr, "infeasible at op %zu (%s): %s\n", err->index,
                 t[err->index].str().c_str(), err->message.c_str());
    return 2;
  }

  Spec spec;
  const trace::SpecReplayResult run = trace::replay_spec(t, spec);
  std::printf("%-4s %-12s %s\n", "#", "operation", "rule");
  for (std::size_t i = 0; i < run.rules.size(); ++i) {
    std::printf("%-4zu %-12s %s\n", i, t[i].str().c_str(),
                rule_name(run.rules[i]));
  }
  if (run.error_index) {
    std::printf("\n=> race detected at op %zu: %s\n", *run.error_index,
                t[*run.error_index].str().c_str());
  } else {
    std::printf("\n=> race-free\n");
  }

  // Cross-check with the independent happens-before oracle.
  const trace::HbResult oracle = trace::analyze(t);
  if (oracle.race_free() == !run.error_index.has_value()) {
    std::printf("happens-before oracle agrees (Theorem 3.1 in action)\n");
  } else {
    std::printf("ORACLE DISAGREES - this would be a bug; please report it\n");
    return 1;
  }
  if (!oracle.race_free()) {
    std::printf("racing pair: op %zu (%s) and op %zu (%s)\n",
                oracle.first_race->first,
                t[oracle.first_race->first].str().c_str(),
                oracle.first_race->second,
                t[oracle.first_race->second].str().c_str());
  }
  return 0;
}
